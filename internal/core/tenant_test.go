package core

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"os"
	"sort"
	"sync"
	"testing"
	"time"

	"omnireduce/internal/obs"
	"omnireduce/internal/tenant"
	"omnireduce/internal/tensor"
	"omnireduce/internal/transport"
	"omnireduce/internal/wire"
)

// openJobAll opens (tenantName, jobName) on every worker of the cluster
// and fails the test on any refusal.
func openJobAll(t testing.TB, c *cluster, tenantName, jobName string) []*Job {
	t.Helper()
	jobs := make([]*Job, len(c.workers))
	var wg sync.WaitGroup
	errs := make([]error, len(c.workers))
	for i, w := range c.workers {
		wg.Add(1)
		go func(i int, w *Worker) {
			defer wg.Done()
			jobs[i], errs[i] = w.OpenJob(tenantName, jobName)
		}(i, w)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: OpenJob(%s/%s): %v", i, tenantName, jobName, err)
		}
	}
	return jobs
}

// jobAllReduce runs one collective on an open job across all members.
func jobAllReduce(t testing.TB, jobs []*Job, inputs [][]float32) {
	t.Helper()
	var wg sync.WaitGroup
	errs := make([]error, len(jobs))
	for i, j := range jobs {
		wg.Add(1)
		go func(i int, j *Job) {
			defer wg.Done()
			errs[i] = j.AllReduce(inputs[i])
		}(i, j)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("job worker %d: %v", i, err)
		}
	}
}

// TestMultiJobBitIdenticalVsSolo is the tentpole acceptance check: one
// aggregator serving four jobs across two tenants concurrently must
// produce, for every job, results bit-identical to that job running
// alone on its own cluster.
func TestMultiJobBitIdenticalVsSolo(t *testing.T) {
	const workers, size, rounds = 2, 2048, 3
	ids := []struct{ tenant, job string }{
		{"prod", "ranker"}, {"prod", "embedder"},
		{"research", "ablation-a"}, {"research", "ablation-b"},
	}
	cfg := Config{Workers: workers, Reliable: true, DeterministicOrder: true, AggShards: 2}

	// Per-job deterministic inputs, distinct across jobs.
	inputsFor := func(jobIdx, round int) [][]float32 {
		return randomInputs(size, workers, 0.7, int64(1000*jobIdx+round))
	}

	// Solo reference: each job alone on a fresh single-job cluster.
	solo := make([][][]float32, len(ids))
	for jobIdx := range ids {
		c := startCluster(t, cfg, 0, 1)
		for round := 0; round < rounds; round++ {
			in := inputsFor(jobIdx, round)
			c.allReduce(t, in)
			if round == rounds-1 {
				solo[jobIdx] = in
			}
		}
		for _, w := range c.workers {
			w.Close()
		}
	}

	// Multiplexed run: all four jobs concurrently on ONE cluster.
	c := startCluster(t, cfg, 0, 1)
	multi := make([][][]float32, len(ids))
	var wg sync.WaitGroup
	for jobIdx, id := range ids {
		wg.Add(1)
		go func(jobIdx int, tenantName, jobName string) {
			defer wg.Done()
			jobs := openJobAll(t, c, tenantName, jobName)
			for round := 0; round < rounds; round++ {
				in := inputsFor(jobIdx, round)
				jobAllReduce(t, jobs, in)
				if round == rounds-1 {
					multi[jobIdx] = in
				}
			}
			for _, j := range jobs {
				j.Close()
			}
		}(jobIdx, id.tenant, id.job)
	}
	wg.Wait()

	for jobIdx := range ids {
		for w := 0; w < workers; w++ {
			for i := range solo[jobIdx][w] {
				if math.Float32bits(solo[jobIdx][w][i]) != math.Float32bits(multi[jobIdx][w][i]) {
					t.Fatalf("job %s/%s worker %d element %d: multiplexed %v != solo %v (not bit-identical)",
						ids[jobIdx].tenant, ids[jobIdx].job, w, i, multi[jobIdx][w][i], solo[jobIdx][w][i])
				}
			}
		}
	}
}

// TestJobsDoNotDisturbDefaultJob runs the legacy single-job API
// concurrently with named jobs on the same cluster: both must produce
// correct sums.
func TestJobsDoNotDisturbDefaultJob(t *testing.T) {
	const workers, size = 2, 1024
	c := startCluster(t, Config{Workers: workers, Reliable: true}, 0, 1)

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		in := randomInputs(size, workers, 0.5, 7)
		want := expectedSum(in)
		c.allReduce(t, in)
		checkResult(t, in, want)
	}()
	go func() {
		defer wg.Done()
		jobs := openJobAll(t, c, "prod", "sidecar")
		in := randomInputs(size, workers, 0.5, 8)
		want := expectedSum(in)
		jobAllReduce(t, jobs, in)
		checkResult(t, in, want)
		for _, j := range jobs {
			j.Close()
		}
	}()
	wg.Wait()
}

// TestMaxJobsQuotaTyped verifies the per-tenant MaxJobs quota surfaces
// as ErrTenantQuota from OpenJob, deterministically.
func TestMaxJobsQuotaTyped(t *testing.T) {
	cfg := Config{
		Workers: 2, Reliable: true,
		Tenancy: &tenant.Config{Tenants: map[string]tenant.Quota{"small": {MaxJobs: 1}}},
	}
	c := startCluster(t, cfg, 0, 1)
	jobs := openJobAll(t, c, "small", "first")
	defer func() {
		for _, j := range jobs {
			j.Close()
		}
	}()
	if _, err := c.workers[0].OpenJob("small", "second"); !errors.Is(err, ErrTenantQuota) {
		t.Fatalf("second job = %v; want ErrTenantQuota", err)
	}
	// An unconstrained tenant is unaffected.
	other := openJobAll(t, c, "big", "fine")
	for _, j := range other {
		j.Close()
	}
}

// TestMaxInFlightOpsQuotaTyped verifies the per-tenant in-flight
// collective cap: while one op is live (held open by a worker that has
// not joined yet), a second collective from the same tenant is refused
// with ErrTenantQuota delivered through the data path as a typed error.
func TestMaxInFlightOpsQuotaTyped(t *testing.T) {
	cfg := Config{
		Workers: 2, Reliable: true,
		Tenancy: &tenant.Config{Tenants: map[string]tenant.Quota{"small": {MaxInFlightOps: 1}}},
	}
	c := startCluster(t, cfg, 0, 1)
	jobs := openJobAll(t, c, "small", "a")

	// Worker 0 starts op1; worker 1 deliberately holds back, so op1 stays
	// in flight (the aggregator needs both workers' blocks to finish it).
	data0 := make([]float32, 512)
	for i := range data0 {
		data0[i] = 1
	}
	p1, err := jobs[0].AllReduceAsync(data0)
	if err != nil {
		t.Fatal(err)
	}

	// Wait until the aggregator has actually admitted op1.
	reg := c.aggs[0].Registry()
	deadline := time.Now().Add(5 * time.Second)
	for reg.ActiveOps() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("op1 never admitted")
		}
		time.Sleep(time.Millisecond)
	}

	// A second collective from the same tenant must be refused while op1
	// is live. Worker 0's attempt mints op2's tensor ID and gets the
	// typed refusal, which the registry memoizes.
	if err := jobs[0].AllReduce(make([]float32, 64)); !errors.Is(err, ErrTenantQuota) {
		t.Fatalf("op2 (worker 0) = %v; want ErrTenantQuota", err)
	}

	// Worker 1 joins op1 (its first mint is op1's tensor ID) and the
	// held collective completes.
	data1 := make([]float32, 512)
	for i := range data1 {
		data1[i] = 2
	}
	if err := jobs[1].AllReduce(data1); err != nil {
		t.Fatalf("worker 1 op1: %v", err)
	}
	if err := p1.Wait(); err != nil {
		t.Fatalf("op1: %v", err)
	}
	for i, v := range data0 {
		if v != 3 {
			t.Fatalf("op1 element %d = %v, want 3", i, v)
		}
	}

	// Worker 1's op2 attempt — after op1 completed and capacity freed —
	// still gets the memoized verdict for op2's tensor ID, so SPMD
	// members fail with one coherent typed error instead of splitting.
	if err := jobs[1].AllReduce(make([]float32, 64)); !errors.Is(err, ErrTenantQuota) {
		t.Fatalf("op2 (worker 1) = %v; want memoized ErrTenantQuota", err)
	}
	for _, j := range jobs {
		j.Close()
	}
}

// TestTidCollisionRejected is the regression test for the pre-registry
// tensor-ID collision hazard: two independent collectives sharing an
// aggregator and a tensor ID used to interleave silently into one merge,
// corrupting both results. The registry now detects the second transport
// node claiming an already-bound (namespace, worker ID) and refuses its
// packets with a typed error, while the first collective completes
// untouched.
func TestTidCollisionRejected(t *testing.T) {
	// Cluster A: one legacy worker (node 0) + aggregator (node 2).
	nw := transport.NewNetwork(2, 256)
	aggConn := nw.AddNode(2)
	cfg := Config{Workers: 1, Aggregators: []int{2}, Reliable: true}
	agg, err := NewAggregator(aggConn, cfg)
	if err != nil {
		t.Fatal(err)
	}
	aggDone := make(chan error, 1)
	go func() { aggDone <- agg.Run() }()

	w, err := NewWorker(nw.Conn(0), cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Worker A's first collective binds (ns 0, wid 0) to node 0.
	data := []float32{1, 2, 3, 4}
	if err := w.AllReduce(data); err != nil {
		t.Fatal(err)
	}

	// The intruder (node 1) replays the same tensor ID and worker ID that
	// cluster A just used — the exact wire bytes a second one-worker
	// cluster would produce for its own first collective.
	intruder := nw.Conn(1)
	bad := wire.AppendPacket(nil, &wire.Packet{
		Type: wire.TypeData, WID: 0, TensorID: 1, BlockSize: 4,
		Nexts: []uint32{wire.Inf(0)},
	})
	if err := intruder.Send(2, bad); err != nil {
		t.Fatal(err)
	}
	// The intruder must be answered with a typed OpReject naming the
	// collision, not merged.
	msg, err := intruder.Recv()
	if err != nil {
		t.Fatal(err)
	}
	cp, err := wire.DecodeControl(msg.Data)
	transport.PutBuf(msg.Data)
	if err != nil {
		t.Fatalf("intruder reply not a control packet: %v", err)
	}
	if cp.Type != wire.TypeOpReject || cp.Reason != wire.ReasonCollision || cp.TensorID != 1 {
		t.Fatalf("intruder reply = %+v; want OpReject/ReasonCollision tid 1", cp)
	}

	// Cluster A keeps working after the attack.
	data2 := []float32{5, 6, 7, 8}
	if err := w.AllReduce(data2); err != nil {
		t.Fatalf("cluster A after collision: %v", err)
	}

	w.Close()
	intruder.Close()
	aggConn.Close()
	if err := <-aggDone; err != nil {
		t.Fatalf("aggregator: %v", err)
	}
}

// TestNamespaceSquattingRejected: a worker cannot open a job claiming a
// namespace its (tenant, job) identity does not hash to.
func TestNamespaceSquattingRejected(t *testing.T) {
	c := startCluster(t, Config{Workers: 1, Reliable: true}, 0, 1)
	jobs := openJobAll(t, c, "prod", "ranker")
	defer jobs[0].Close()
	reg := c.aggs[0].Registry()
	// Direct registry probe: a different key on the same namespace.
	ns := jobs[0].Namespace()
	if _, err := reg.OpenJob(tenant.JobKey{Tenant: "evil", Job: "squatter"}, ns, 0, 1, 9); err == nil {
		t.Fatal("squatting OpenJob accepted")
	}
}

// TestAggregatorDrain exercises the graceful-drain path end to end: an
// in-flight collective (held open by a lagging worker) must complete
// during the drain, new work must be refused with
// ErrAggregatorDraining, and Drain must return only after quiescence —
// all with a balanced pool-leak audit.
func TestAggregatorDrain(t *testing.T) {
	audit := obs.StartLeakAudit()
	cfg := Config{Workers: 2, Reliable: true, AggShards: 2}
	c := startCluster(t, cfg, 0, 1)
	jobs := openJobAll(t, c, "prod", "ranker")

	// Op held in flight: worker 0 starts, worker 1 lags.
	data0 := make([]float32, 4096)
	for i := range data0 {
		data0[i] = 1
	}
	p1, err := jobs[0].AllReduceAsync(data0)
	if err != nil {
		t.Fatal(err)
	}
	reg := c.aggs[0].Registry()
	deadline := time.Now().Add(5 * time.Second)
	for reg.ActiveOps() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("op never admitted")
		}
		time.Sleep(time.Millisecond)
	}

	// Start the drain; it must NOT complete while the op is in flight.
	drained := make(chan error, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	go func() { drained <- c.aggs[0].Drain(ctx) }()
	select {
	case err := <-drained:
		t.Fatalf("Drain returned %v with an op in flight", err)
	case <-time.After(50 * time.Millisecond):
	}

	// New admissions are refused with the typed drain error.
	if _, err := c.workers[0].OpenJob("prod", "latecomer"); !errors.Is(err, ErrAggregatorDraining) {
		t.Fatalf("OpenJob during drain = %v; want ErrAggregatorDraining", err)
	}

	// Worker 1 joins; the in-flight collective completes...
	data1 := make([]float32, 4096)
	for i := range data1 {
		data1[i] = 2
	}
	if err := jobs[1].AllReduce(data1); err != nil {
		t.Fatalf("worker 1: %v", err)
	}
	if err := p1.Wait(); err != nil {
		t.Fatalf("in-flight op: %v", err)
	}
	for i, v := range data0 {
		if v != 3 {
			t.Fatalf("element %d = %v, want 3", i, v)
		}
	}
	// ...and the drain concludes.
	select {
	case err := <-drained:
		if err != nil {
			t.Fatalf("Drain: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Drain never completed after quiescence")
	}

	// A post-drain collective on the already-open job is refused typed.
	if err := jobs[0].AllReduce(make([]float32, 64)); !errors.Is(err, ErrAggregatorDraining) {
		t.Fatalf("op after drain = %v; want ErrAggregatorDraining", err)
	}

	for _, j := range jobs {
		j.Close()
	}
	for _, w := range c.workers {
		w.Close()
	}
	for _, conn := range c.aggConns {
		conn.Close()
	}
	c.aggWG.Wait()
	if leaks := audit.Settle(5 * time.Second); len(leaks) != 0 {
		t.Fatalf("pool leaks after drain: %v", obs.LeaksErr(leaks))
	}
}

// TestStarvationSoak runs an aggressive tenant flooding collectives
// against a quiet tenant issuing sparse small ones on a shared sharded
// aggregator, and bounds the quiet tenant's p95 latency relative to its
// solo baseline. The deficit-round-robin scheduler is what keeps the
// bound: without it the aggressive tenant's backlog would serialize in
// front of every quiet-tenant packet. Runs ~2s normally; set -tenant.soak
// (the make tenants tier does) for the full 30s soak.
func TestStarvationSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short")
	}
	duration := 2 * time.Second
	if soakFlag {
		duration = 30 * time.Second
	}
	cfg := Config{
		Workers: 2, Reliable: true, AggShards: 2,
		Tenancy: &tenant.Config{Tenants: map[string]tenant.Quota{
			"quiet":      {Weight: 1},
			"aggressive": {Weight: 1},
		}},
	}

	// Solo baseline: the quiet workload alone.
	quietRound := func(jobs []*Job, size int) (time.Duration, error) {
		ins := [][]float32{make([]float32, size), make([]float32, size)}
		for w := range ins {
			for i := range ins[w] {
				ins[w][i] = float32(w + 1)
			}
		}
		start := time.Now()
		var wg sync.WaitGroup
		errs := make([]error, len(jobs))
		for i, j := range jobs {
			wg.Add(1)
			go func(i int, j *Job) { defer wg.Done(); errs[i] = j.AllReduce(ins[i]) }(i, j)
		}
		wg.Wait()
		return time.Since(start), errors.Join(errs...)
	}
	const quietSize = 1 << 10

	baselineC := startCluster(t, cfg, 0, 1)
	baseJobs := openJobAll(t, baselineC, "quiet", "telemetry")
	var baseline []time.Duration
	for i := 0; i < 20; i++ {
		d, err := quietRound(baseJobs, quietSize)
		if err != nil {
			t.Fatal(err)
		}
		baseline = append(baseline, d)
	}
	for _, j := range baseJobs {
		j.Close()
	}

	// Contended run: aggressive tenant floods big collectives while the
	// quiet tenant keeps its cadence.
	c := startCluster(t, cfg, 0, 2)
	quiet := openJobAll(t, c, "quiet", "telemetry")
	loud := openJobAll(t, c, "aggressive", "flood")

	stop := make(chan struct{})
	var floodWG sync.WaitGroup
	floodWG.Add(1)
	go func() {
		defer floodWG.Done()
		big := [][]float32{make([]float32, 1<<15), make([]float32, 1<<15)}
		for w := range big {
			for i := range big[w] {
				big[w][i] = 1
			}
		}
		for {
			select {
			case <-stop:
				return
			default:
			}
			var wg sync.WaitGroup
			for i, j := range loud {
				wg.Add(1)
				go func(i int, j *Job) { defer wg.Done(); _ = j.AllReduce(big[i]) }(i, j)
			}
			wg.Wait()
		}
	}()

	var contended []time.Duration
	soakEnd := time.Now().Add(duration)
	for time.Now().Before(soakEnd) {
		d, err := quietRound(quiet, quietSize)
		if err != nil {
			t.Fatal(err)
		}
		contended = append(contended, d)
		time.Sleep(10 * time.Millisecond)
	}
	close(stop)
	floodWG.Wait()

	p95 := func(ds []time.Duration) time.Duration {
		s := append([]time.Duration(nil), ds...)
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
		return s[(len(s)*95)/100]
	}
	base95, cont95 := p95(baseline), p95(contended)
	t.Logf("quiet tenant p95: solo %v, contended %v (%d rounds, soak %v)",
		base95, cont95, len(contended), duration)
	// The bound is deliberately loose (channel-fabric timing is noisy in
	// CI) but catches order-of-magnitude starvation: pre-DRR, the flood's
	// backlog queues ahead of every quiet packet.
	limit := 50*base95 + 200*time.Millisecond
	if cont95 > limit {
		t.Fatalf("quiet tenant starved: contended p95 %v > limit %v (solo %v)", cont95, limit, base95)
	}

	for _, j := range quiet {
		j.Close()
	}
	for _, j := range loud {
		j.Close()
	}
}

// TestJobReopenAfterClose: closing a job frees its namespace for a
// different job that hashes to the same slot, and reopening the same job
// works.
func TestJobReopenAfterClose(t *testing.T) {
	c := startCluster(t, Config{Workers: 2, Reliable: true}, 0, 1)
	jobs := openJobAll(t, c, "prod", "cycle")
	in := randomInputs(256, 2, 0.5, 3)
	want := expectedSum(in)
	jobAllReduce(t, jobs, in)
	checkResult(t, in, want)
	for _, j := range jobs {
		j.Close()
	}
	// Closing is asynchronous on the aggregator; reopening retries until
	// the registry has reaped the old sessions.
	deadline := time.Now().Add(5 * time.Second)
	for {
		jobs2, err := func() (js []*Job, err error) {
			js = make([]*Job, len(c.workers))
			for i, w := range c.workers {
				js[i], err = w.OpenJob("prod", "cycle")
				if err != nil {
					for _, j := range js[:i] {
						j.Close()
					}
					return nil, err
				}
			}
			return js, nil
		}()
		if err == nil {
			in2 := randomInputs(256, 2, 0.5, 4)
			want2 := expectedSum(in2)
			jobAllReduce(t, jobs2, in2)
			checkResult(t, in2, want2)
			for _, j := range jobs2 {
				j.Close()
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("reopen never succeeded: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestSparseJobCollective: Algorithm 3 sparse collectives work inside a
// named job's namespace, and match the dense reference sum.
func TestSparseJobCollective(t *testing.T) {
	c := startCluster(t, Config{Workers: 2, Reliable: true}, 0, 1)
	jobs := openJobAll(t, c, "prod", "sparse")
	rng := rand.New(rand.NewSource(11))
	ins := []*tensor.COO{randomCOO(1024, 60, rng), randomCOO(1024, 60, rng)}
	want := expectedSparseSum(ins)
	outs := make([]*tensor.COO, len(jobs))
	var wg sync.WaitGroup
	for i, j := range jobs {
		wg.Add(1)
		go func(i int, j *Job) {
			defer wg.Done()
			out, err := j.AllReduceSparse(ins[i])
			if err != nil {
				t.Errorf("worker %d: %v", i, err)
				return
			}
			outs[i] = out
		}(i, j)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	for i, out := range outs {
		got := out.ToDense()
		for k := range want.Data {
			d := float64(got.Data[k]) - float64(want.Data[k])
			if d > 1e-4 || d < -1e-4 {
				t.Fatalf("worker %d element %d: got %v want %v", i, k, got.Data[k], want.Data[k])
			}
		}
	}
	for _, j := range jobs {
		j.Close()
	}
}

// soakFlag stretches TestStarvationSoak to the full 30 seconds; the
// make tenants tier sets OMNIREDUCE_SOAK=1.
var soakFlag = os.Getenv("OMNIREDUCE_SOAK") != ""
