package core

import "omnireduce/internal/protocol"

// opState is the per-collective driver state a worker keeps hot across
// operations: the inbound message queue, the receive-side decode state,
// and the transmit batch (encode arena + outgoing queue). One collective
// owns the state exclusively from beginOp to endOp; between collectives
// it parks on the worker's free list, so the second and later operations
// on a connection run the whole datapath — decode, encode, queueing —
// against already-allocated memory. The protocol machine is pooled too
// (protocol.GetWorkerMachine/Recycle) and appends its emits to the
// state's reusable EmitBuf, so steady-state rounds run without any
// allocation at all.
//
// Reuse safety is anchored in opQueue: the queue carries the tensor ID it
// currently serves and deliver drops (as stale) any message whose tensor
// ID does not match, which closes the race where the receive pump still
// holds a queue reference from a finished operation when the queue is
// reset for a new one.
type opState struct {
	q   *opQueue
	dec *decodeState
	tx  txBatch
	eb  protocol.EmitBuf
}

// newOpState builds the state for its first operation.
func (w *Worker) newOpState(tid uint32) *opState {
	return &opState{
		q:   newOpQueue(w.cfg.OpQueueLen, tid),
		dec: getDecodeState(),
		tx: txBatch{
			observe:   observeWorkerTx,
			flushFull: obsWorkerFlushFull,
			flushEnd:  obsWorkerFlushEnd,
		},
	}
}

// release returns the state's pooled resources. Called when the worker is
// shutting down (states are otherwise recycled, not released); after it,
// the state must not be reused.
func (st *opState) release() {
	if st.dec != nil {
		putDecodeState(st.dec)
		st.dec = nil
	}
}
