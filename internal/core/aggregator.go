package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"omnireduce/internal/metrics"
	"omnireduce/internal/obs"
	"omnireduce/internal/protocol"
	"omnireduce/internal/transport"
	"omnireduce/internal/wire"
)

// Aggregator is one aggregator node: it owns the slots of every stream
// mapped to it and serves the block aggregation of Algorithms 1 and 2 plus
// the key-value aggregation of Algorithm 3. Create with NewAggregator and
// drive with Run.
//
// The aggregation logic lives in protocol.AggregatorMachine; the
// Aggregator is its I/O driver: it decodes inbound transport messages,
// feeds them to the machine, and encodes and transmits the machine's
// emits. Result multicasts are encoded once and fanned out.
//
// With Config.AggShards > 1, Run partitions the slot space across a
// bounded pool of shard goroutines, each owning an independent machine —
// the software analogue of the paper's multi-pipeline switch aggregation.
// Dense packets route by slot and sparse packets by tensor ID, which are
// exactly the keys the machine partitions its own state by, so shards
// never share protocol state and per-slot packet order is preserved. The
// machines stay pure either way; only the driver knows about goroutines.
type Aggregator struct {
	conn transport.Conn
	cfg  Config
	m    *protocol.AggregatorMachine

	tx  txBatch
	dec decodeState

	// pump tallies the sharded router's dispatch decisions; see
	// PumpSnapshot.
	pump aggPumpCounters

	// Stats accumulates traffic counters. They are written by the Run
	// goroutine (folded from shard machines on sharded runs); read them
	// only after Run returns (or accept racy reads for monitoring).
	Stats AggStats
}

// aggPumpCounters tallies the sharded router's dispatch behavior.
type aggPumpCounters struct {
	routed      atomic.Int64
	shardStalls atomic.Int64
}

// AggPumpStats is a point-in-time copy of the sharded router's counters.
// On unsharded runs (AggShards <= 1) both fields stay zero.
type AggPumpStats struct {
	// Routed is the number of messages dispatched to shards.
	Routed int64
	// ShardStalls counts messages that found their shard's queue full and
	// made the router block until the shard caught up. A high ratio of
	// stalls to routed messages means one shard is the bottleneck
	// (skewed slot distribution) or shards are starved for CPU.
	ShardStalls int64
}

// PumpSnapshot returns the sharded router's dispatch counters.
func (a *Aggregator) PumpSnapshot() AggPumpStats {
	return AggPumpStats{
		Routed:      a.pump.routed.Load(),
		ShardStalls: a.pump.shardStalls.Load(),
	}
}

// AggStats counts aggregator-side protocol activity. The recovery
// counters distinguish the three fates of a non-live packet: a duplicate
// of the current round (filtered), a packet from an old round (answered
// with a replay when possible), and a packet for a tensor that finished
// long enough ago that its archived result was evicted (dropped). It
// mirrors protocol.AggStats field for field; on sharded runs it is the
// field-wise sum across shard machines, which equals the single-machine
// totals because every counter is attributable to one slot or tensor.
type AggStats struct {
	PacketsRecvd     int64
	BlocksAggregated int64
	RoundsCompleted  int64
	ResultsSent      int64
	Replays          int64 // unicast result retransmissions (Algorithm 2)
	DupsFiltered     int64 // same-round duplicates discarded
	StaleRounds      int64 // packets arriving for an already-concluded round
	StaleFinished    int64 // packets for finished tensors past the archive
}

// accumulate folds one machine's counters in field for field.
func (s *AggStats) accumulate(ms protocol.AggStats) {
	s.PacketsRecvd += ms.PacketsRecvd
	s.BlocksAggregated += ms.BlocksAggregated
	s.RoundsCompleted += ms.RoundsCompleted
	s.ResultsSent += ms.ResultsSent
	s.Replays += ms.Replays
	s.DupsFiltered += ms.DupsFiltered
	s.StaleRounds += ms.StaleRounds
	s.StaleFinished += ms.StaleFinished
}

// RecoveryCounters exports the loss-recovery subset of the counters as a
// metrics counter set. Call only after Run returns (the counters are
// written unsynchronized by the Run goroutine).
func (s *AggStats) RecoveryCounters() *metrics.Counters {
	c := metrics.NewCounters()
	c.Add("result_replays", s.Replays)
	c.Add("dups_filtered", s.DupsFiltered)
	c.Add("stale_rounds", s.StaleRounds)
	c.Add("stale_finished_dropped", s.StaleFinished)
	return c
}

// NewAggregator returns an aggregator bound to conn.
func NewAggregator(conn transport.Conn, cfg Config) (*Aggregator, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Aggregator{
		conn: conn,
		cfg:  cfg,
		m:    protocol.NewAggregatorMachine(cfg.proto(), conn.LocalID()),
		tx:   newAggTxBatch(),
	}, nil
}

// newAggTxBatch configures an aggregator-side transmit batch: result
// multicasts are encoded once (the machine guarantees a pointer-shared
// packet means identical bytes), and fan-out destinations become one
// sendmmsg burst on the Linux fast path.
func newAggTxBatch() txBatch {
	return txBatch{
		observe:   observeAggTx,
		flushFull: obsAggFlushFull,
		flushEnd:  obsAggFlushEnd,
		dedup:     true,
	}
}

// Run processes packets until the connection closes. It returns nil on
// orderly shutdown (transport.ErrClosed) and the underlying error
// otherwise. A close racing with an in-flight reply (the connection went
// away between receiving a packet and transmitting its response) is also
// orderly shutdown.
func (a *Aggregator) Run() error {
	if a.cfg.AggShards > 1 {
		return a.runSharded(a.cfg.AggShards)
	}
	for {
		m, err := a.conn.Recv()
		if err != nil {
			if err == transport.ErrClosed {
				return nil
			}
			return err
		}
		if err := a.handle(m); err != nil {
			if errors.Is(err, transport.ErrClosed) {
				return nil
			}
			return err
		}
	}
}

// handle decodes one inbound message, runs it through the machine, and
// transmits the machine's emits. The message buffer is recycled to the
// transport pool as soon as decoding has copied it out.
func (a *Aggregator) handle(m transport.Message) error {
	emits, err := handleMsg(a.m, &a.dec, m)
	a.Stats = AggStats(a.m.Stats())
	if err != nil {
		return err
	}
	return a.tx.sendEmits(a.conn, emits)
}

// handleMsg decodes one message into dec's reusable state, releases the
// encoded buffer, and feeds the packet to machine m. Decoding copies
// everything out of msg.Data (payloads land in dec's scratch arena), so
// the buffer goes back to the transport pool before the machine runs —
// on decode errors too, since a buffer that failed to decode is equally
// finished with.
func handleMsg(m *protocol.AggregatorMachine, dec *decodeState, msg transport.Message) ([]protocol.Emit, error) {
	n := int64(len(msg.Data))
	obsAggPackets.Inc()
	obsAggRxSize.Observe(n)
	var pm protocol.Msg
	var tid uint32
	switch wire.PeekType(msg.Data) {
	case wire.TypeData:
		p, err := dec.decodeDense(msg.Data)
		if err != nil {
			transport.PutBuf(msg.Data)
			return nil, fmt.Errorf("core: aggregator decode: %w", err)
		}
		pm.Dense = p
		tid = p.TensorID
	case wire.TypeSparseData:
		p, err := dec.decodeSparse(msg.Data)
		if err != nil {
			transport.PutBuf(msg.Data)
			return nil, fmt.Errorf("core: aggregator decode sparse: %w", err)
		}
		pm.Sparse = p
		tid = p.TensorID
	default:
		transport.PutBuf(msg.Data)
		return nil, fmt.Errorf("core: aggregator received unexpected message type %d", wire.PeekType(msg.Data))
	}
	transport.PutBuf(msg.Data)
	if obs.Enabled() {
		obs.Emit(obs.EvPacketRecvd, tid, n)
		before := m.Stats().BlocksAggregated
		emits, err := m.HandlePacket(pm)
		if after := m.Stats().BlocksAggregated; after > before {
			obs.Emit(obs.EvBlockRecvd, tid, after-before)
		}
		return emits, err
	}
	return m.HandlePacket(pm)
}

// aggShard is one slot-partition of a sharded aggregator: its own
// machine, decode state, and transmit batch, fed in slot order through a
// dedicated channel. Nothing here is shared with other shards.
type aggShard struct {
	conn transport.Conn
	m    *protocol.AggregatorMachine
	in   chan transport.Message
	dec  decodeState
	tx   txBatch
	err  error
}

// run drains the shard's inbound channel until it closes. After a
// protocol error the shard keeps draining (discarding messages, recycling
// their buffers) so the router never blocks on a dead shard; fail lets
// the router learn about the failure promptly.
func (s *aggShard) run(fail func()) {
	for m := range s.in {
		if s.err != nil {
			transport.PutBuf(m.Data)
			continue
		}
		emits, err := handleMsg(s.m, &s.dec, m)
		if err == nil {
			err = s.tx.sendEmits(s.conn, emits)
		}
		if err != nil {
			s.err = err
			fail()
		}
	}
}

// shardOf routes an encoded message to its shard: dense packets by slot,
// sparse packets by tensor ID — the keys the machine partitions all of
// its state by. Unparseable messages go to shard 0, whose decode error
// surfaces through Run just as on the serial path.
func shardOf(data []byte, n int) int {
	switch wire.PeekType(data) {
	case wire.TypeData:
		if slot, ok := wire.PeekSlot(data); ok {
			return int(slot) % n
		}
	case wire.TypeSparseData:
		if tid, ok := peekTensorID(data); ok {
			return int(tid) % n
		}
	}
	return 0
}

// runSharded is Run's bounded-parallel form: n shard goroutines, a
// router loop feeding them, and a final fold of per-shard stats into
// Stats. Per-slot FIFO order is preserved because the route is a pure
// function of the slot and each shard processes its channel serially.
func (a *Aggregator) runSharded(n int) error {
	shards := make([]*aggShard, n)
	proto := a.cfg.proto()
	for i := range shards {
		shards[i] = &aggShard{
			conn: a.conn,
			m:    protocol.NewAggregatorMachine(proto, a.conn.LocalID()),
			in:   make(chan transport.Message, 64),
			tx:   newAggTxBatch(),
		}
	}
	var wg sync.WaitGroup
	failed := make(chan struct{})
	var failOnce sync.Once
	fail := func() { failOnce.Do(func() { close(failed) }) }
	for _, s := range shards {
		wg.Add(1)
		go func(s *aggShard) { defer wg.Done(); s.run(fail) }(s)
	}

	// A receive pump decouples the blocking Recv from the router so the
	// router can react to a shard failure while no packet is arriving. If
	// the router exits first (shard failure), the pump drains until the
	// connection closes — Run's contract already requires the caller to
	// close the conn when done with the aggregator.
	type recvResult struct {
		m   transport.Message
		err error
	}
	recvCh := make(chan recvResult)
	routerDone := make(chan struct{})
	go func() {
		for {
			m, err := a.conn.Recv()
			select {
			case recvCh <- recvResult{m, err}:
				if err != nil {
					return
				}
			case <-routerDone:
				transport.PutBuf(m.Data)
				if err != nil {
					return
				}
			}
		}
	}()

	var recvErr error
router:
	for {
		select {
		case <-failed:
			break router
		case r := <-recvCh:
			if r.err != nil {
				recvErr = r.err
				break router
			}
			sh := shards[shardOf(r.m.Data, n)]
			a.pump.routed.Add(1)
			select {
			case sh.in <- r.m:
			default:
				// The shard's queue is full; the router must wait for it.
				// Counted so a bottleneck shard is visible in AggPumpStats
				// rather than showing up only as mysteriously low
				// throughput.
				a.pump.shardStalls.Add(1)
				obsAggStalls.Inc()
				sh.in <- r.m
			}
		}
	}
	close(routerDone)
	for _, s := range shards {
		close(s.in)
	}
	wg.Wait()

	var sum AggStats
	for _, s := range shards {
		sum.accumulate(s.m.Stats())
	}
	a.Stats = sum

	for _, s := range shards {
		if s.err != nil && !errors.Is(s.err, transport.ErrClosed) {
			return s.err
		}
	}
	if recvErr != nil && recvErr != transport.ErrClosed {
		return recvErr
	}
	return nil
}
