package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"omnireduce/internal/metrics"
	"omnireduce/internal/obs"
	"omnireduce/internal/protocol"
	"omnireduce/internal/tenant"
	"omnireduce/internal/transport"
	"omnireduce/internal/wire"
)

// Aggregator is one aggregator node of the multi-tenant collective
// service: a long-lived process that concurrently serves many jobs from
// many tenants, each in its own tensor-ID namespace. Create with
// NewAggregator and drive with Run.
//
// The aggregation logic lives in protocol.AggregatorMachine — one
// instance per (shard, namespace), since jobs differ in worker count —
// and the Aggregator is the I/O and policy driver around them:
//
//   - A tenant.Registry makes every admission decision: job opens
//     (quotas, namespace collisions), first packets of new collectives
//     (per-tenant in-flight caps, drain refusals), and worker-to-node
//     bindings for result routing and collision detection. Refusals are
//     answered with typed control packets, so workers fail with
//     ErrTenantQuota / ErrAggregatorDraining / ErrTidCollision instead
//     of timing out.
//   - With Config.AggShards > 1, Run partitions the slot space across a
//     bounded pool of shard goroutines. Each shard is fed through a
//     deficit-round-robin scheduler keyed by namespace, so a tenant
//     flooding the aggregator gets at most its weighted share of merge
//     time and quiet tenants' latency stays bounded.
//   - Drain stops admissions and waits for in-flight rounds to finish —
//     the graceful half of a rolling restart.
//
// Dense packets route to shards by slot and sparse packets by tensor ID,
// exactly the keys the machine partitions its own state by, so shards
// never share protocol state and per-slot packet order is preserved. The
// machines stay pure; only the driver knows about goroutines.
type Aggregator struct {
	conn transport.Conn
	cfg  Config
	reg  *tenant.Registry

	// Serial-path state (AggShards <= 1).
	ms  machineSet
	tx  txBatch
	dec decodeState
	eb  protocol.EmitBuf

	// gate is the admission filter run by the single Recv-consumer
	// thread (the serial loop or the sharded router).
	gate admitGate

	// shardsMu guards shards, which Drain polls for queued work while
	// runSharded owns it.
	shardsMu sync.Mutex
	shards   []*aggShard

	// pump tallies the sharded router's dispatch decisions; see
	// PumpSnapshot.
	pump aggPumpCounters

	// Elastic membership (see failover.go). viewMu guards view, standby
	// and ckStore; enforce is the datapath's lock-free "is epoch
	// enforcement on" check (flips on at most once, never off). The
	// gate's epoch bindings live on the gate itself: they are touched
	// only by the Recv-consumer thread.
	viewMu      sync.Mutex
	view        protocol.View
	standby     bool
	restoreFrom int // primary replaced at activation (-1 = none recorded)
	ckStore     map[ckKey][]byte
	enforce     atomic.Bool

	// Stats accumulates traffic counters. They are written by the Run
	// goroutine (folded from shard machines on sharded runs); read them
	// only after Run returns (or accept racy reads for monitoring).
	Stats AggStats
}

// aggPumpCounters tallies the sharded router's dispatch behavior.
type aggPumpCounters struct {
	routed      atomic.Int64
	shardStalls atomic.Int64
	schedDrops  atomic.Int64
}

// AggPumpStats is a point-in-time copy of the sharded router's counters.
// On unsharded runs (AggShards <= 1) all fields stay zero.
type AggPumpStats struct {
	// Routed is the number of messages dispatched to shards.
	Routed int64
	// ShardStalls counts messages that found their flow's scheduler queue
	// full on a reliable transport and made the router block until the
	// shard caught up. A high ratio of stalls to routed messages means
	// one shard is the bottleneck (skewed slot distribution) or shards
	// are starved for CPU.
	ShardStalls int64
	// SchedDrops counts messages dropped because their flow's scheduler
	// queue was full on an unreliable transport (repaired by Algorithm
	// 2's retransmission, like any other loss).
	SchedDrops int64
}

// PumpSnapshot returns the sharded router's dispatch counters.
func (a *Aggregator) PumpSnapshot() AggPumpStats {
	return AggPumpStats{
		Routed:      a.pump.routed.Load(),
		ShardStalls: a.pump.shardStalls.Load(),
		SchedDrops:  a.pump.schedDrops.Load(),
	}
}

// AggStats counts aggregator-side protocol activity. The recovery
// counters distinguish the three fates of a non-live packet: a duplicate
// of the current round (filtered), a packet from an old round (answered
// with a replay when possible), and a packet for a tensor that finished
// long enough ago that its archived result was evicted (dropped). It
// mirrors protocol.AggStats field for field; on sharded runs it is the
// field-wise sum across shard machines, which equals the single-machine
// totals because every counter is attributable to one slot or tensor.
type AggStats struct {
	PacketsRecvd     int64
	BlocksAggregated int64
	RoundsCompleted  int64
	ResultsSent      int64
	Replays          int64 // unicast result retransmissions (Algorithm 2)
	DupsFiltered     int64 // same-round duplicates discarded
	StaleRounds      int64 // packets arriving for an already-concluded round
	StaleFinished    int64 // packets for finished tensors past the archive
	FastForwards     int64 // rounds skipped resyncing after a checkpoint restore
}

// add folds another AggStats in field for field.
func (s *AggStats) add(o AggStats) {
	s.PacketsRecvd += o.PacketsRecvd
	s.BlocksAggregated += o.BlocksAggregated
	s.RoundsCompleted += o.RoundsCompleted
	s.ResultsSent += o.ResultsSent
	s.Replays += o.Replays
	s.DupsFiltered += o.DupsFiltered
	s.StaleRounds += o.StaleRounds
	s.StaleFinished += o.StaleFinished
	s.FastForwards += o.FastForwards
}

// accumulate folds one machine's counters in field for field.
func (s *AggStats) accumulate(ms protocol.AggStats) {
	s.PacketsRecvd += ms.PacketsRecvd
	s.BlocksAggregated += ms.BlocksAggregated
	s.RoundsCompleted += ms.RoundsCompleted
	s.ResultsSent += ms.ResultsSent
	s.Replays += ms.Replays
	s.DupsFiltered += ms.DupsFiltered
	s.StaleRounds += ms.StaleRounds
	s.StaleFinished += ms.StaleFinished
	s.FastForwards += ms.FastForwards
}

// RecoveryCounters exports the loss-recovery subset of the counters as a
// metrics counter set. Call only after Run returns (the counters are
// written unsynchronized by the Run goroutine).
func (s *AggStats) RecoveryCounters() *metrics.Counters {
	c := metrics.NewCounters()
	c.Add("result_replays", s.Replays)
	c.Add("dups_filtered", s.DupsFiltered)
	c.Add("stale_rounds", s.StaleRounds)
	c.Add("stale_finished_dropped", s.StaleFinished)
	c.Add("fast_forwards", s.FastForwards)
	return c
}

// NewAggregator returns an aggregator bound to conn.
func NewAggregator(conn transport.Conn, cfg Config) (*Aggregator, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	var tcfg tenant.Config
	if cfg.Tenancy != nil {
		tcfg = *cfg.Tenancy
	}
	a := &Aggregator{
		conn: conn,
		cfg:  cfg,
		reg:  tenant.NewRegistry(tcfg, obs.Default, cfg.Workers),
		tx:   txBatch{observe: observeAggTx, flushFull: obsAggFlushFull, flushEnd: obsAggFlushEnd, dedup: true},
	}
	a.ms = newMachineSet(cfg.proto(), conn.LocalID(), a.reg)
	a.ms.restore = a.restoreInto
	a.tx.resolve = a.resolveDst
	a.gate = admitGate{a: a, verdicts: make(map[admitKey]uint8), gens: make(map[uint32]uint32), bound: make(map[int]uint32)}
	if cfg.View != nil {
		a.view = cfg.View.Clone()
	}
	a.standby = cfg.Standby
	a.restoreFrom = -1
	// Epoch enforcement arms when the node participates in dynamic
	// membership: a standby refuses all data until activated, and a
	// primary with a real (non-zero) epoch refuses connections that have
	// not acknowledged it. View-less aggregators never enforce — the
	// legacy datapath is untouched.
	if cfg.Standby || (cfg.View != nil && cfg.View.Epoch > 0) {
		a.enforce.Store(true)
	}
	return a, nil
}

// Registry exposes the aggregator's job registry (admission state,
// per-tenant accounting) for inspection and tests.
func (a *Aggregator) Registry() *tenant.Registry { return a.reg }

// resolveDst maps a machine-emitted destination (a job-relative worker
// ID) to the transport node that worker registered from. The default
// namespace keeps the historic identity mapping — its workers never
// register, their worker IDs are their node IDs.
func (a *Aggregator) resolveDst(tid uint32, dst int) int {
	if protocol.TidNamespace(tid) == 0 {
		return dst
	}
	if node, ok := a.reg.NodeFor(tid, dst); ok {
		return node
	}
	return dst
}

// machineSet lazily instantiates one AggregatorMachine per tensor-ID
// namespace: jobs differ in worker count, and the machine sizes its
// per-worker state from its config. Namespace 0 uses the aggregator's
// own configured worker count, exactly the pre-tenancy behavior. Every
// machine's lifecycle hooks feed the registry's in-flight accounting.
type machineSet struct {
	base    protocol.Config
	localID int
	reg     *tenant.Registry
	ms      map[uint32]*protocol.AggregatorMachine
	gens    map[uint32]uint32 // registration generation each machine was built under
	retired AggStats          // counters folded out of retired machines

	// shard is this set's shard index (0 on the serial path); restore,
	// when non-nil, is consulted once per freshly built machine so an
	// activated standby resumes from the dead primary's streamed
	// checkpoint instead of a blank slate (see Aggregator.restoreInto).
	shard   int
	restore func(m *protocol.AggregatorMachine, shard int, ns uint32)
}

func newMachineSet(base protocol.Config, localID int, reg *tenant.Registry) machineSet {
	return machineSet{
		base: base, localID: localID, reg: reg,
		ms:   make(map[uint32]*protocol.AggregatorMachine),
		gens: make(map[uint32]uint32),
	}
}

// machineFor returns the machine owning tid's namespace, creating it on
// first contact. gen is the namespace's registration generation as
// stamped by the admission gate: a job that closed and reopened restarts
// its tensor-ID sequence, so a machine surviving from the previous
// session would answer the new session's reused tensor IDs out of its
// finished-tensor archive. A generation mismatch therefore retires the
// old machine (keeping its counters) and builds a fresh one. Returns nil
// when the namespace is not (or no longer) registered — the admission
// gate refuses unknown namespaces up front, so this only catches packets
// straggling behind a job close.
func (s *machineSet) machineFor(tid uint32, gen uint32) *protocol.AggregatorMachine {
	ns := protocol.TidNamespace(tid)
	if m := s.ms[ns]; m != nil {
		if s.gens[ns] == gen {
			return m
		}
		var old AggStats
		old.accumulate(m.Stats())
		s.retired.add(old)
		m.Release() // return live slot state, balancing the pool audit
		delete(s.ms, ns)
	}
	cfg := s.base
	inFlight := 0
	if ns != 0 {
		w := s.reg.WorkersOf(ns)
		if w <= 0 {
			return nil
		}
		cfg.Workers = w
		inFlight = s.reg.MaxInFlightOf(ns)
	}
	m := protocol.NewAggregatorMachine(cfg, s.localID)
	// Presize the slot table: one bucket per stream slot, each deep
	// enough for the tenant's in-flight operation window (default 4 when
	// uncapped) so steady-state admission never grows it.
	if inFlight <= 0 {
		inFlight = 4
	}
	m.Presize(cfg.WithDefaults().Streams, inFlight)
	m.SlotOpened = s.reg.SlotOpened
	m.SlotFinished = s.reg.SlotFinished
	// Restore after the hooks are set: restoring open slots must replay
	// SlotOpened into the registry's in-flight accounting.
	if s.restore != nil {
		s.restore(m, s.shard, ns)
	}
	s.ms[ns] = m
	s.gens[ns] = gen
	return m
}

// release retires every machine in the set, returning slot state to the
// protocol pools (leak-audit balance) and folding counters into retired.
func (s *machineSet) release() {
	for ns, m := range s.ms {
		var old AggStats
		old.accumulate(m.Stats())
		s.retired.add(old)
		m.Release()
		delete(s.ms, ns)
	}
}

// fold accumulates every machine's counters (live and retired) into sum.
func (s *machineSet) fold(sum *AggStats) {
	sum.add(s.retired)
	for _, m := range s.ms {
		sum.accumulate(m.Stats())
	}
}

// Run processes packets until the connection closes. It returns nil on
// orderly shutdown (transport.ErrClosed) and the underlying error
// otherwise. A close racing with an in-flight reply (the connection went
// away between receiving a packet and transmitting its response) is also
// orderly shutdown.
func (a *Aggregator) Run() error {
	if a.cfg.AggShards > 1 {
		return a.runSharded(a.cfg.AggShards)
	}
	// On exit, retire the surviving machines so their pooled slot state is
	// returned (leak-audit balance) while the folded stats stay readable.
	defer func() {
		a.ms.release()
		a.Stats = AggStats{}
		a.ms.fold(&a.Stats)
	}()
	for {
		m, err := a.conn.Recv()
		if err != nil {
			if err == transport.ErrClosed {
				return nil
			}
			return err
		}
		forward, err := a.gate.filter(m)
		if err != nil {
			if errors.Is(err, transport.ErrClosed) {
				return nil
			}
			return err
		}
		if !forward {
			continue
		}
		if err := a.handle(m); err != nil {
			if errors.Is(err, transport.ErrClosed) {
				return nil
			}
			return err
		}
	}
}

// handle decodes one inbound message, runs it through its namespace's
// machine, and transmits the machine's emits. The message buffer is
// recycled to the transport pool as soon as decoding has copied it out.
func (a *Aggregator) handle(m transport.Message) error {
	var gen, tid uint32
	if t, ok := peekTensorID(m.Data); ok {
		tid = t
		gen = a.gate.genOf(t)
	}
	a.eb.Reset()
	err := handleMsg(&a.ms, &a.dec, &a.eb, m, gen)
	a.Stats = AggStats{}
	a.ms.fold(&a.Stats)
	if err != nil {
		return err
	}
	// Output-commit: the checkpoint covering this machine step streams to
	// the standbys BEFORE the step's emits reach any worker, so a standby
	// can never know less than a worker holding one of these results.
	if len(a.cfg.CheckpointPeers) > 0 && len(a.eb.Emits()) > 0 {
		a.sendCheckpoint(&a.ms, a.ms.shard, protocol.TidNamespace(tid))
	}
	return a.tx.sendEmits(a.conn, a.eb.Emits())
}

// handleMsg decodes one message into dec's reusable state, releases the
// encoded buffer, and feeds the packet to its namespace's machine (built
// or rebuilt for registration generation gen), which appends its emits to
// eb (reset here). Decoding copies everything out of msg.Data (payloads
// land in dec's scratch arena), so the buffer goes back to the transport
// pool before the machine runs — on decode errors too, since a buffer
// that failed to decode is equally finished with. The emits reference the
// machine's reusable shells; the caller must consume them before the next
// handleMsg on the same machine set (sendEmits encodes them immediately).
func handleMsg(ms *machineSet, dec *decodeState, eb *protocol.EmitBuf, msg transport.Message, gen uint32) error {
	eb.Reset()
	n := int64(len(msg.Data))
	obsAggPackets.Inc()
	obsAggRxSize.Observe(n)
	var pm protocol.Msg
	var tid uint32
	switch wire.PeekType(msg.Data) {
	case wire.TypeData:
		p, err := dec.decodeDense(msg.Data)
		if err != nil {
			transport.PutBuf(msg.Data)
			return fmt.Errorf("core: aggregator decode: %w", err)
		}
		pm.Dense = p
		tid = p.TensorID
	case wire.TypeSparseData:
		p, err := dec.decodeSparse(msg.Data)
		if err != nil {
			transport.PutBuf(msg.Data)
			return fmt.Errorf("core: aggregator decode sparse: %w", err)
		}
		pm.Sparse = p
		tid = p.TensorID
	default:
		transport.PutBuf(msg.Data)
		return fmt.Errorf("core: aggregator received unexpected message type %d", wire.PeekType(msg.Data))
	}
	transport.PutBuf(msg.Data)
	m := ms.machineFor(tid, gen)
	if m == nil {
		// The job closed with packets still queued behind the gate; too
		// late to serve, nothing to corrupt.
		obsAggLateDrops.Inc()
		return nil
	}
	if obs.Enabled() {
		obs.Emit(obs.EvPacketRecvd, tid, n)
		before := m.Stats().BlocksAggregated
		err := m.HandlePacket(pm, eb)
		if after := m.Stats().BlocksAggregated; after > before {
			obs.Emit(obs.EvBlockRecvd, tid, after-before)
		}
		return err
	}
	return m.HandlePacket(pm, eb)
}

// admitGate is the admission filter in front of the merge path, run by
// whichever single thread consumes Recv (the serial loop or the sharded
// router) — so every admission decision is serialized without any
// datapath locking. It owns the control plane: job opens and closes are
// answered here, and every (tensor ID, worker ID, sender) triple the
// router has not seen is ruled on by the registry. Keying verdicts on
// the full triple (not the tensor ID alone) is what catches a second
// cluster squatting on an already-ruled tensor ID from a different node
// — with a tid-only cache its packets would ride the first cluster's
// admission straight into the merge. Steady-state cost per packet is one
// map probe.
type admitGate struct {
	a        *Aggregator
	verdicts map[admitKey]uint8 // wire reason; 0 = admitted
	gens     map[uint32]uint32  // namespace registration generations (bumped on job deregistration)
	bound    map[int]uint32     // per-connection acked view epoch (TypeViewAck), gate-thread only
	ctrlBuf  []byte             // reusable control-reply encode buffer
}

// admitKey identifies one ruled-on packet source: the operation, the
// job-relative worker claiming it, and the transport node it came from.
type admitKey struct {
	tid  uint32
	wid  uint16
	from int
}

// filter inspects one inbound message. It returns forward=true when the
// message should proceed to the merge path; otherwise the message was
// consumed here (control traffic, rejected operations) and its buffer
// recycled. A transport error sending a refusal propagates so Run can
// wind down.
func (g *admitGate) filter(m transport.Message) (bool, error) {
	t := wire.PeekType(m.Data)
	if wire.IsViewType(t) {
		// Membership traffic: epoch acks, view announcements, checkpoint
		// frames. Consumed here, on the thread that owns the bindings.
		return false, g.viewMsg(t, m)
	}
	if !wire.IsControlType(t) {
		if t != wire.TypeData && t != wire.TypeSparseData {
			// Results and unknown types fall through to the merge path,
			// which reports them exactly as before tenancy existed.
			return true, nil
		}
		tid, ok := peekTensorID(m.Data)
		if !ok {
			return true, nil // undecodable; the merge path raises the error
		}
		if g.a.enforce.Load() && g.bound[m.From] != g.a.curEpoch() {
			// The connection has not acknowledged the current view (it is
			// bound to an older epoch, or this node is an unactivated
			// standby). Typed refusal carrying the current view — never a
			// silent drop — so the sender can rebind and replay.
			from := m.From
			transport.PutBuf(m.Data)
			return false, g.refuseStaleEpoch(from, tid)
		}
		wid, _ := wire.PeekWID(m.Data)
		key := admitKey{tid: tid, wid: wid, from: m.From}
		reason, known := g.verdicts[key]
		if !known {
			var err error
			reason, err = g.a.reg.AdmitOp(tid, int(wid), m.From)
			if err != nil {
				obsAggOpsRejected.Inc()
			} else {
				obsAggOpsAdmitted.Inc()
			}
			if len(g.verdicts) >= 1<<16 {
				// Bound the memo on a long-lived service; AdmitOp is
				// idempotent for known triples so re-deriving is safe.
				clear(g.verdicts)
			}
			g.verdicts[key] = reason
		}
		if reason == wire.ReasonNone {
			return true, nil
		}
		// Refused: answer the sender with the op's own tensor ID so the
		// worker-side pump routes the refusal to the waiting operation.
		from := m.From
		transport.PutBuf(m.Data)
		return false, g.sendControl(from, &wire.ControlPacket{
			Type:     wire.TypeOpReject,
			Reason:   reason,
			TensorID: tid,
		})
	}

	obsAggCtrlPackets.Inc()
	cp, err := wire.DecodeControl(m.Data)
	from := m.From
	transport.PutBuf(m.Data)
	if err != nil {
		return false, nil
	}
	switch cp.Type {
	case wire.TypeJobOpen:
		key := tenant.JobKey{Tenant: cp.Tenant, Job: cp.Job}
		ns := protocol.TidNamespace(cp.TensorID)
		reason, oerr := g.a.reg.OpenJob(key, ns, int(cp.WID), int(cp.Workers), from)
		reply := &wire.ControlPacket{Type: wire.TypeJobAccept, TensorID: cp.TensorID}
		if oerr != nil {
			reply.Type = wire.TypeJobReject
			reply.Reason = reason
		}
		return false, g.sendControl(from, reply)
	case wire.TypeJobClose:
		ns := protocol.TidNamespace(cp.TensorID)
		if g.a.reg.CloseJob(ns, int(cp.WID)) {
			g.retire(ns)
		}
		return false, nil
	default:
		// Accept/Reject/OpReject are worker-bound; arriving here they are
		// stray reflections and are dropped.
		return false, nil
	}
}

// retire records that ns's job fully deregistered. The next registration
// of the namespace is a new generation — machines built for the old
// session get rebuilt on first contact (see machineSet.machineFor) — and
// cached verdicts for the namespace's tensor IDs are forgotten, since a
// reincarnated job reuses tensor IDs and must not inherit the old
// session's admissions or refusals.
func (g *admitGate) retire(ns uint32) {
	g.gens[ns]++
	for k := range g.verdicts {
		if protocol.TidNamespace(k.tid) == ns {
			delete(g.verdicts, k)
		}
	}
}

// genOf reports the current registration generation of tid's namespace.
// Must be called from the gate's owning thread (the Recv consumer).
func (g *admitGate) genOf(tid uint32) uint32 {
	return g.gens[protocol.TidNamespace(tid)]
}

// sendControl encodes and transmits one control packet, reusing the
// gate's buffer.
func (g *admitGate) sendControl(to int, cp *wire.ControlPacket) error {
	g.ctrlBuf = wire.AppendControl(g.ctrlBuf[:0], cp)
	if cp.Type == wire.TypeOpReject || cp.Type == wire.TypeJobReject {
		obsAggRejectsSent.Inc()
	}
	return g.a.conn.Send(to, g.ctrlBuf)
}

// aggShard is one slot-partition of a sharded aggregator: its own
// machines (one per namespace), decode state, and transmit batch, fed in
// per-flow FIFO order through a deficit-round-robin scheduler. Nothing
// here is shared with other shards.
type aggShard struct {
	conn transport.Conn
	ms   machineSet
	in   *tenant.DRR[shardItem]
	dec  decodeState
	eb   protocol.EmitBuf
	tx   txBatch
	err  error

	// ck, when non-nil, streams the handled namespace's checkpoint to the
	// standbys after each machine step that produced emits, before those
	// emits transmit (Aggregator.sendCheckpoint).
	ck func(ms *machineSet, shard int, ns uint32)
}

// shardItem is one scheduled unit of shard work: the encoded message
// plus the registration generation of its namespace at routing time. The
// generation travels with the packet because the gate (router thread)
// owns generation state while machines live on shard goroutines; per-
// flow FIFO order makes the stamp monotonic per (shard, namespace).
type shardItem struct {
	m   transport.Message
	gen uint32
}

// run drains the shard's scheduler until it closes. After a protocol
// error the shard keeps draining (discarding messages, recycling their
// buffers) so the router never blocks on a dead shard; fail lets the
// router learn about the failure promptly.
func (s *aggShard) run(fail func()) {
	// Machines retire when the shard exits; stats stay readable through
	// the retired fold (runSharded folds after the shards join).
	defer s.ms.release()
	for {
		it, ok := s.in.Pop()
		if !ok {
			return
		}
		if s.err != nil {
			transport.PutBuf(it.m.Data)
			continue
		}
		var ns uint32
		if s.ck != nil {
			if tid, ok := peekTensorID(it.m.Data); ok {
				ns = protocol.TidNamespace(tid)
			}
		}
		err := handleMsg(&s.ms, &s.dec, &s.eb, it.m, it.gen)
		if err == nil {
			if s.ck != nil && len(s.eb.Emits()) > 0 {
				s.ck(&s.ms, s.ms.shard, ns)
			}
			err = s.tx.sendEmits(s.conn, s.eb.Emits())
		}
		if err != nil {
			s.err = err
			fail()
		}
	}
}

// shardOf routes an encoded message to its shard: dense packets by slot,
// sparse packets by tensor ID — the keys the machine partitions all of
// its state by. Unparseable messages go to shard 0, whose decode error
// surfaces through Run just as on the serial path.
func shardOf(data []byte, n int) int {
	switch wire.PeekType(data) {
	case wire.TypeData:
		if slot, ok := wire.PeekSlot(data); ok {
			return int(slot) % n
		}
	case wire.TypeSparseData:
		if tid, ok := peekTensorID(data); ok {
			return int(tid) % n
		}
	}
	return 0
}

// schedFlowCap bounds each (shard, namespace) queue. Sized like the
// previous per-shard channel: deep enough to ride out a merge burst,
// shallow enough that a stuck shard surfaces as stalls (reliable) or
// drops (unreliable) rather than unbounded memory.
const schedFlowCap = 64

// runSharded is Run's bounded-parallel form: n shard goroutines, a
// router loop feeding them through per-namespace DRR schedulers, and a
// final fold of per-shard stats into Stats. Per-(job, slot) FIFO order
// is preserved because the route is a pure function of (namespace,
// slot), flows are FIFO, and each shard processes its scheduler
// serially.
func (a *Aggregator) runSharded(n int) error {
	shards := make([]*aggShard, n)
	proto := a.cfg.proto()
	for i := range shards {
		shards[i] = &aggShard{
			conn: a.conn,
			ms:   newMachineSet(proto, a.conn.LocalID(), a.reg),
			in:   tenant.NewDRR[shardItem](0, schedFlowCap, a.reg.Weight),
		}
		shards[i].ms.shard = i
		shards[i].ms.restore = a.restoreInto
		if len(a.cfg.CheckpointPeers) > 0 {
			shards[i].ck = a.sendCheckpoint
		}
		shards[i].tx = txBatch{observe: observeAggTx, flushFull: obsAggFlushFull, flushEnd: obsAggFlushEnd, dedup: true, resolve: a.resolveDst}
	}
	a.shardsMu.Lock()
	a.shards = shards
	a.shardsMu.Unlock()
	defer func() {
		a.shardsMu.Lock()
		a.shards = nil
		a.shardsMu.Unlock()
	}()

	var wg sync.WaitGroup
	failed := make(chan struct{})
	var failOnce sync.Once
	fail := func() { failOnce.Do(func() { close(failed) }) }
	for _, s := range shards {
		wg.Add(1)
		go func(s *aggShard) { defer wg.Done(); s.run(fail) }(s)
	}

	// A receive pump decouples the blocking Recv from the router so the
	// router can react to a shard failure while no packet is arriving. If
	// the router exits first (shard failure), the pump drains until the
	// connection closes — Run's contract already requires the caller to
	// close the conn when done with the aggregator.
	type recvResult struct {
		m   transport.Message
		err error
	}
	recvCh := make(chan recvResult)
	routerDone := make(chan struct{})
	go func() {
		for {
			m, err := a.conn.Recv()
			select {
			case recvCh <- recvResult{m, err}:
				if err != nil {
					return
				}
			case <-routerDone:
				transport.PutBuf(m.Data)
				if err != nil {
					return
				}
			}
		}
	}()

	var recvErr error
	var gateErr error
router:
	for {
		select {
		case <-failed:
			break router
		case r := <-recvCh:
			if r.err != nil {
				recvErr = r.err
				break router
			}
			forward, err := a.gate.filter(r.m)
			if err != nil {
				gateErr = err
				break router
			}
			if !forward {
				continue
			}
			tid, _ := peekTensorID(r.m.Data)
			ns := protocol.TidNamespace(tid)
			it := shardItem{m: r.m, gen: a.gate.gens[ns]}
			sh := shards[shardOf(r.m.Data, n)]
			a.pump.routed.Add(1)
			if sh.in.Push(ns, it, len(r.m.Data)) {
				continue
			}
			if !a.cfg.Reliable {
				// The flow's queue is full on a lossy fabric: drop like
				// the network would; Algorithm 2 repairs it. Only this
				// flow is penalized — other tenants' queues are unaffected.
				a.pump.schedDrops.Add(1)
				obsAggSchedDrops.Inc()
				transport.PutBuf(r.m.Data)
				continue
			}
			// Reliable transports must not drop; the router waits for the
			// shard, counted so a bottleneck shard is visible in
			// AggPumpStats rather than showing up only as mysteriously low
			// throughput.
			a.pump.shardStalls.Add(1)
			obsAggStalls.Inc()
			if err := sh.in.PushWait(ns, it, len(r.m.Data)); err != nil {
				transport.PutBuf(r.m.Data)
			}
		}
	}
	close(routerDone)
	for _, s := range shards {
		s.in.Close()
	}
	wg.Wait()

	var sum AggStats
	for _, s := range shards {
		s.ms.fold(&sum)
	}
	a.Stats = sum

	for _, s := range shards {
		if s.err != nil && !errors.Is(s.err, transport.ErrClosed) {
			return s.err
		}
	}
	if gateErr != nil && !errors.Is(gateErr, transport.ErrClosed) {
		return gateErr
	}
	if recvErr != nil && recvErr != transport.ErrClosed {
		return recvErr
	}
	return nil
}

// queuedPackets reports how many admitted packets sit in shard
// schedulers (0 on the serial path, which has no queues).
func (a *Aggregator) queuedPackets() int {
	a.shardsMu.Lock()
	shards := a.shards
	a.shardsMu.Unlock()
	total := 0
	for _, s := range shards {
		total += s.in.Len()
	}
	return total
}

// drainPoll is the interval at which Drain re-checks for quiescence.
const drainPoll = 5 * time.Millisecond

// Drain gracefully quiesces the aggregator for a rolling restart: it
// stops admitting new jobs and collectives (refusals carry
// ErrAggregatorDraining so workers fail over instead of hanging), lets
// every in-flight round run to completion, and returns once no admitted
// operation, live slot, or queued packet remains — or with ctx's error
// if the deadline expires first. The registry's final per-tenant
// accounting stays published on the obs registry.
//
// Drain does not close the transport; the caller follows up with Close
// (or keeps serving replays) once Drain returns.
func (a *Aggregator) Drain(ctx context.Context) error {
	a.reg.StartDrain()
	obsAggDraining.Set(1)
	// Quiescent means nothing admitted is unfinished AND nothing is
	// queued between gate and machines. Two consecutive idle reads with a
	// settle gap close the window where a shard has popped the last
	// packet but not yet pushed its result to the transport.
	idleStreak := 0
	for {
		if a.reg.ActiveOps() == 0 && a.reg.LiveSlots() == 0 && a.queuedPackets() == 0 {
			idleStreak++
			if idleStreak >= 2 {
				obsAggDrains.Inc()
				return nil
			}
		} else {
			idleStreak = 0
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("core: drain: %w (ops=%d slots=%d queued=%d)",
				ctx.Err(), a.reg.ActiveOps(), a.reg.LiveSlots(), a.queuedPackets())
		case <-time.After(drainPoll):
		}
	}
}
