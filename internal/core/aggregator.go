package core

import (
	"errors"
	"fmt"

	"omnireduce/internal/metrics"
	"omnireduce/internal/protocol"
	"omnireduce/internal/transport"
	"omnireduce/internal/wire"
)

// Aggregator is one aggregator node: it owns the slots of every stream
// mapped to it and serves the block aggregation of Algorithms 1 and 2 plus
// the key-value aggregation of Algorithm 3. Create with NewAggregator and
// drive with Run.
//
// The aggregation logic lives in protocol.AggregatorMachine; the
// Aggregator is its I/O driver: it decodes inbound transport messages,
// feeds them to the machine, and encodes and transmits the machine's
// emits. Result multicasts are encoded once and fanned out.
type Aggregator struct {
	conn transport.Conn
	cfg  Config
	m    *protocol.AggregatorMachine

	encBuf []byte

	// Stats accumulates traffic counters. They are written by the Run
	// goroutine; read them only after Run returns (or accept racy reads
	// for monitoring).
	Stats AggStats
}

// AggStats counts aggregator-side protocol activity. The recovery
// counters distinguish the three fates of a non-live packet: a duplicate
// of the current round (filtered), a packet from an old round (answered
// with a replay when possible), and a packet for a tensor that finished
// long enough ago that its archived result was evicted (dropped). It
// mirrors protocol.AggStats field for field.
type AggStats struct {
	PacketsRecvd     int64
	BlocksAggregated int64
	RoundsCompleted  int64
	ResultsSent      int64
	Replays          int64 // unicast result retransmissions (Algorithm 2)
	DupsFiltered     int64 // same-round duplicates discarded
	StaleRounds      int64 // packets arriving for an already-concluded round
	StaleFinished    int64 // packets for finished tensors past the archive
}

// RecoveryCounters exports the loss-recovery subset of the counters as a
// metrics counter set. Call only after Run returns (the counters are
// written unsynchronized by the Run goroutine).
func (s *AggStats) RecoveryCounters() *metrics.Counters {
	c := metrics.NewCounters()
	c.Add("result_replays", s.Replays)
	c.Add("dups_filtered", s.DupsFiltered)
	c.Add("stale_rounds", s.StaleRounds)
	c.Add("stale_finished_dropped", s.StaleFinished)
	return c
}

// NewAggregator returns an aggregator bound to conn.
func NewAggregator(conn transport.Conn, cfg Config) (*Aggregator, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Aggregator{
		conn: conn,
		cfg:  cfg,
		m:    protocol.NewAggregatorMachine(cfg.proto(), conn.LocalID()),
	}, nil
}

// Run processes packets until the connection closes. It returns nil on
// orderly shutdown (transport.ErrClosed) and the underlying error
// otherwise. A close racing with an in-flight reply (the connection went
// away between receiving a packet and transmitting its response) is also
// orderly shutdown.
func (a *Aggregator) Run() error {
	for {
		m, err := a.conn.Recv()
		if err != nil {
			if err == transport.ErrClosed {
				return nil
			}
			return err
		}
		if err := a.handle(m); err != nil {
			if errors.Is(err, transport.ErrClosed) {
				return nil
			}
			return err
		}
	}
}

// handle decodes one inbound message, runs it through the machine, and
// transmits the machine's emits.
func (a *Aggregator) handle(m transport.Message) error {
	var msg protocol.Msg
	switch wire.PeekType(m.Data) {
	case wire.TypeData:
		p, err := wire.DecodePacket(m.Data)
		if err != nil {
			return fmt.Errorf("core: aggregator decode: %w", err)
		}
		msg.Dense = p
	case wire.TypeSparseData:
		p, err := wire.DecodeSparsePacket(m.Data)
		if err != nil {
			return fmt.Errorf("core: aggregator decode sparse: %w", err)
		}
		msg.Sparse = p
	default:
		return fmt.Errorf("core: aggregator received unexpected message type %d", wire.PeekType(m.Data))
	}
	emits, err := a.m.HandlePacket(msg)
	a.Stats = AggStats(a.m.Stats())
	if err != nil {
		return err
	}
	return a.send(emits)
}

// send encodes and transmits emits. Consecutive emits sharing one packet
// (a result multicast) are encoded once.
func (a *Aggregator) send(emits []protocol.Emit) error {
	var lastPkt *wire.Packet
	var lastSparse *wire.SparsePacket
	encoded := false
	for i := range emits {
		e := &emits[i]
		if !encoded || e.Packet != lastPkt || e.Sparse != lastSparse {
			a.encBuf = e.Encode(a.encBuf[:0])
			lastPkt, lastSparse = e.Packet, e.Sparse
			encoded = true
		}
		if err := a.conn.Send(e.Dst, a.encBuf); err != nil {
			return err
		}
	}
	return nil
}
