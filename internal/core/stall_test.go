package core

import (
	"encoding/json"
	"errors"
	"os"
	"sync"
	"testing"
	"time"

	"omnireduce/internal/obs"
	"omnireduce/internal/transport"
)

// TestStallWatchdogPostmortem wedges a worker's transport — sends are
// swallowed, nothing is ever received — and asserts the watchdog turns
// the silent hang into a typed error carrying a postmortem bundle, within
// the configured timeout (plus scheduling slack).
func TestStallWatchdogPostmortem(t *testing.T) {
	dir := t.TempDir()
	fr := obs.NewFlightRecorder(-1, 256)
	prev := obs.SetTracer(fr)
	defer obs.SetTracer(prev)

	conn := transport.NewWedgedConn(0)
	defer conn.Close()
	const stall = 100 * time.Millisecond
	w, err := NewWorker(conn, Config{
		Workers:       1,
		Aggregators:   []int{1},
		Reliable:      true,
		StallTimeout:  stall,
		PostmortemDir: dir,
	})
	if err != nil {
		t.Fatal(err)
	}

	data := make([]float32, 4096)
	for i := range data {
		data[i] = float32(i%7) + 1
	}
	start := time.Now()
	err = w.AllReduce(data)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("AllReduce over a wedged transport succeeded")
	}
	if !errors.Is(err, ErrOpStalled) {
		t.Fatalf("error %v is not ErrOpStalled", err)
	}
	var se *StallError
	if !errors.As(err, &se) {
		t.Fatalf("error %v is not a *StallError", err)
	}
	// No result ever arrives, so the very first watchdog period detects
	// the stall; allow generous scheduling slack.
	if elapsed > 10*stall {
		t.Fatalf("stall detected after %v, want ~%v", elapsed, stall)
	}

	if se.Bundle == nil {
		t.Fatal("StallError carries no bundle")
	}
	if se.Bundle.WorkerID != 0 || se.Bundle.TensorID == 0 {
		t.Fatalf("bundle identity = w%d t%d", se.Bundle.WorkerID, se.Bundle.TensorID)
	}
	if se.Bundle.Machine.PacketsSent == 0 {
		t.Fatal("bundle machine stats show no bootstrap packets: capture happened too early or not at all")
	}
	if se.Bundle.Flight == nil {
		t.Fatal("bundle has no flight-recorder dump despite an installed recorder")
	}
	issues := 0
	for _, r := range se.Bundle.Flight.Records {
		if r.Ev == obs.EvSlotIssue {
			issues++
		}
	}
	if issues == 0 {
		t.Fatal("flight dump in bundle has no EvSlotIssue records")
	}

	if se.BundlePath == "" {
		t.Fatal("no postmortem file written despite PostmortemDir")
	}
	raw, err := os.ReadFile(se.BundlePath)
	if err != nil {
		t.Fatalf("reading bundle: %v", err)
	}
	var onDisk Postmortem
	if err := json.Unmarshal(raw, &onDisk); err != nil {
		t.Fatalf("bundle does not parse: %v", err)
	}
	if onDisk.TensorID != se.Bundle.TensorID || onDisk.IdleNs != int64(stall) {
		t.Fatalf("on-disk bundle mismatch: %+v", onDisk)
	}
}

// TestStallWatchdogHealthyRun: a healthy collective with the watchdog
// armed completes normally — progress keeps resetting the heartbeat.
func TestStallWatchdogHealthyRun(t *testing.T) {
	c := startCluster(t, Config{Workers: 2, Reliable: true, StallTimeout: 2 * time.Second}, 0, 1)
	var wg sync.WaitGroup
	errs := make([]error, len(c.workers))
	for i, w := range c.workers {
		wg.Add(1)
		go func(i int, w *Worker) {
			defer wg.Done()
			data := make([]float32, 2048)
			for j := range data {
				data[j] = float32(i + 1)
			}
			errs[i] = w.AllReduce(data)
		}(i, w)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: healthy run tripped the watchdog: %v", i, err)
		}
	}
}
