package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"omnireduce/internal/transport"
)

// Loss-recovery tests exercise Algorithm 2 over the channel transport
// wrapped in deterministic loss/duplication injectors.

func lossyConfig(workers int) Config {
	return Config{
		Workers:           workers,
		Reliable:          false,
		RetransmitTimeout: 5 * time.Millisecond,
		Streams:           2,
		BlockSize:         32,
		FusionWidth:       4,
	}
}

func TestAllReduceWithPacketLoss(t *testing.T) {
	for _, rate := range []float64{0.001, 0.01, 0.05} {
		t.Run(fmt.Sprintf("loss=%v", rate), func(t *testing.T) {
			cfg := lossyConfig(3)
			c := startCluster(t, cfg, rate, 77)
			inputs := randomInputs(4_000, 3, 0.8, 13)
			want := expectedSum(inputs)
			c.allReduce(t, inputs)
			checkResult(t, inputs, want)
		})
	}
}

func TestAllReduceWithHeavyLossAndDuplication(t *testing.T) {
	cfg := lossyConfig(2)
	c := startCluster(t, cfg, 0.10, 99) // 10% drop + 2.5% duplication
	inputs := randomInputs(2_000, 2, 0.5, 5)
	want := expectedSum(inputs)
	c.allReduce(t, inputs)
	checkResult(t, inputs, want)
	var retrans int64
	for _, w := range c.workers {
		retrans += w.Stats.Retransmits
	}
	if retrans == 0 {
		t.Fatal("expected retransmissions at 10% loss")
	}
}

func TestAllReduceLossySequentialTensors(t *testing.T) {
	// Consecutive tensors over a lossy fabric: exercises the final-result
	// archive replay across tensor boundaries.
	cfg := lossyConfig(3)
	c := startCluster(t, cfg, 0.05, 123)
	for round := 0; round < 4; round++ {
		inputs := randomInputs(2_000, 3, 0.7, int64(round)*3)
		want := expectedSum(inputs)
		c.allReduce(t, inputs)
		checkResult(t, inputs, want)
	}
}

func TestAllReduceLossLessModeAcksSent(t *testing.T) {
	// In unreliable mode every worker answers every round, so ack packets
	// appear whenever a worker has nothing to contribute.
	cfg := lossyConfig(2)
	c := startCluster(t, cfg, 0, 7) // no actual loss; protocol still versioned
	// Element sparsity 0.999 gives ~97% block sparsity at bs=32, so
	// non-zero blocks rarely overlap between the two workers.
	inputs := randomInputs(8_192, 2, 0.999, 17)
	want := expectedSum(inputs)
	c.allReduce(t, inputs)
	checkResult(t, inputs, want)
	var acks int64
	for _, w := range c.workers {
		acks += w.Stats.AcksSent
	}
	if acks == 0 {
		t.Fatal("expected empty-ack packets in versioned mode with sparse data")
	}
}

func TestAllReduceLossyDense(t *testing.T) {
	cfg := lossyConfig(4)
	c := startCluster(t, cfg, 0.02, 11)
	inputs := randomInputs(3_000, 4, 0, 19)
	want := expectedSum(inputs)
	c.allReduce(t, inputs)
	checkResult(t, inputs, want)
}

// TestAllReduceOverUDP runs the full stack over real UDP sockets on
// loopback, including datagram loss injection.
func TestAllReduceOverUDP(t *testing.T) {
	const workers = 2
	cfg := Config{
		Workers:           workers,
		Aggregators:       []int{workers},
		Reliable:          false,
		RetransmitTimeout: 20 * time.Millisecond,
		Streams:           2,
		BlockSize:         64,
		FusionWidth:       4,
	}

	// Bind everything on ephemeral ports, then exchange addresses.
	eps := make([]*transport.UDP, workers+1)
	for i := range eps {
		u, err := transport.NewUDP(i, map[int]string{i: "127.0.0.1:0"})
		if err != nil {
			t.Fatal(err)
		}
		defer u.Close()
		eps[i] = u
	}
	for i, u := range eps {
		for j, v := range eps {
			if i != j {
				if err := u.RegisterPeer(j, v.Addr()); err != nil {
					t.Fatal(err)
				}
			}
		}
	}

	agg, err := NewAggregator(transport.NewLossy(eps[workers], 0.01, 0, 3), cfg)
	if err != nil {
		t.Fatal(err)
	}
	go agg.Run()

	ws := make([]*Worker, workers)
	for i := 0; i < workers; i++ {
		w, err := NewWorker(transport.NewLossy(eps[i], 0.01, 0, int64(i)+10), cfg)
		if err != nil {
			t.Fatal(err)
		}
		ws[i] = w
	}

	inputs := randomInputs(10_000, workers, 0.9, 21)
	want := expectedSum(inputs)
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for i := range ws {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = ws[i].AllReduce(inputs[i])
		}(i)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("UDP AllReduce timed out")
	}
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	checkResult(t, inputs, want)
}

// TestAllReduceOverTCP runs the reliable protocol over real TCP sockets.
func TestAllReduceOverTCP(t *testing.T) {
	const workers = 2
	cfg := Config{
		Workers:     workers,
		Aggregators: []int{workers},
		Reliable:    true,
		Streams:     2,
	}
	eps := make([]*transport.TCP, workers+1)
	addrs := map[int]string{}
	for i := range eps {
		tc, err := transport.NewTCP(i, map[int]string{i: "127.0.0.1:0"})
		if err != nil {
			t.Fatal(err)
		}
		defer tc.Close()
		eps[i] = tc
		addrs[i] = tc.Addr()
	}
	// Fill in the address book after all listeners are up.
	for i, tc := range eps {
		for j, a := range addrs {
			if i != j {
				if err := tc.RegisterPeer(j, a); err != nil {
					t.Fatal(err)
				}
			}
		}
	}

	agg, err := NewAggregator(eps[workers], cfg)
	if err != nil {
		t.Fatal(err)
	}
	go agg.Run()

	ws := make([]*Worker, workers)
	for i := 0; i < workers; i++ {
		w, err := NewWorker(eps[i], cfg)
		if err != nil {
			t.Fatal(err)
		}
		ws[i] = w
	}
	inputs := randomInputs(50_000, workers, 0.7, 31)
	want := expectedSum(inputs)
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for i := range ws {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = ws[i].AllReduce(inputs[i])
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	checkResult(t, inputs, want)
}

// Property-style stress: random loss rates and shapes still converge to
// the correct sum.
func TestAllReduceLossyProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for trial := 0; trial < 8; trial++ {
		r := rand.New(rand.NewSource(int64(trial) * 911))
		cfg := Config{
			Workers:           1 + r.Intn(4),
			Reliable:          false,
			RetransmitTimeout: 5 * time.Millisecond,
			BlockSize:         1 + r.Intn(64),
			FusionWidth:       1 + r.Intn(8),
			Streams:           1 + r.Intn(4),
		}
		rate := r.Float64() * 0.08
		c := startCluster(t, cfg, rate, int64(trial))
		inputs := randomInputs(1+r.Intn(3_000), cfg.Workers, r.Float64(), int64(trial)*7)
		want := expectedSum(inputs)
		c.allReduce(t, inputs)
		checkResult(t, inputs, want)
	}
}

func TestMaxRetriesFailsWithoutAggregator(t *testing.T) {
	// No aggregator is running: the worker must give up after MaxRetries
	// rather than spinning forever.
	nw := transport.NewNetwork(1, 64)
	nw.AddNode(1) // aggregator mailbox exists but nothing serves it
	cfg := Config{
		Workers: 1, Aggregators: []int{1},
		Reliable:          false,
		RetransmitTimeout: 2 * time.Millisecond,
		MaxRetries:        3,
		BlockSize:         4,
	}
	w, err := NewWorker(nw.Conn(0), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	errCh := make(chan error, 1)
	go func() { errCh <- w.AllReduce(make([]float32, 64)) }()
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("AllReduce succeeded with no aggregator")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("AllReduce did not give up")
	}
	if w.Stats.Retransmits < 3 {
		t.Fatalf("retransmits = %d, want >= 3", w.Stats.Retransmits)
	}
}

func TestBytesSentAccounting(t *testing.T) {
	cfg := Config{Workers: 2, Reliable: true, BlockSize: 16}
	c := startCluster(t, cfg, 0, 41)
	inputs := randomInputs(2_048, 2, 0.5, 43)
	c.allReduce(t, inputs)
	for i, w := range c.workers {
		if w.Stats.BytesSent <= 0 {
			t.Fatalf("worker %d: BytesSent = %d", i, w.Stats.BytesSent)
		}
		// Bytes must at least cover the counted data blocks.
		if w.Stats.BytesSent < w.Stats.BlocksSent*16*4 {
			t.Fatalf("worker %d: bytes %d below block payload %d",
				i, w.Stats.BytesSent, w.Stats.BlocksSent*16*4)
		}
	}
}

func TestAllReduceWithLossDupAndReorder(t *testing.T) {
	// Full chaos: drops, duplicates, and reordering on every endpoint.
	cfg := lossyConfig(3)
	cfg.RetransmitTimeout = 5 * time.Millisecond
	nw := transport.NewNetwork(3, 4096)
	aggConn := transport.NewLossy(nw.AddNode(3), 0.03, 0.02, 5).SetReorder(0.1)
	agg, err := NewAggregator(aggConn, Config{
		Workers: 3, Aggregators: []int{3}, Reliable: false,
		BlockSize: 32, FusionWidth: 4, Streams: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	go agg.Run()
	defer aggConn.Close()
	ws := make([]*Worker, 3)
	for i := range ws {
		conn := transport.NewLossy(nw.Conn(i), 0.03, 0.02, int64(i)+50).SetReorder(0.1)
		cfgW := cfg
		cfgW.Aggregators = []int{3}
		if ws[i], err = NewWorker(conn, cfgW); err != nil {
			t.Fatal(err)
		}
		defer ws[i].Close()
	}
	inputs := randomInputs(3_000, 3, 0.7, 61)
	want := expectedSum(inputs)
	var wg sync.WaitGroup
	errs := make([]error, 3)
	for i := range ws {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = ws[i].AllReduce(inputs[i])
		}(i)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("chaos AllReduce timed out")
	}
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	checkResult(t, inputs, want)
}
