package core

import (
	"omnireduce/internal/obs"
	"omnireduce/internal/protocol"
	"omnireduce/internal/transport"
	"omnireduce/internal/wire"
)

// Worker-side elastic membership: adopting views, acking epochs, and
// rebinding in-flight collectives when an aggregator fails over.
//
// Epochs bind at CONNECTION granularity: a worker acknowledges the view
// it operates under with one TypeViewAck per aggregator, and every data
// packet it then sends is implicitly stamped with that epoch on the
// aggregator's gate. The dense wire format is untouched — membership
// changes orders of magnitude less often than packets flow.

// viewFromPacket converts a decoded view-plane packet to the protocol
// view it carries.
func viewFromPacket(vp *wire.ViewPacket) protocol.View {
	v := protocol.View{Epoch: vp.Epoch}
	for _, id := range vp.Workers {
		v.Workers = append(v.Workers, int(id))
	}
	for _, id := range vp.Aggregators {
		v.Aggregators = append(v.Aggregators, int(id))
	}
	return v
}

// packetFromView converts a protocol view to its wire representation.
func packetFromView(t uint8, v protocol.View) *wire.ViewPacket {
	vp := &wire.ViewPacket{Type: t, Epoch: v.Epoch}
	for _, id := range v.Workers {
		vp.Workers = append(vp.Workers, int32(id))
	}
	for _, id := range v.Aggregators {
		vp.Aggregators = append(vp.Aggregators, int32(id))
	}
	return vp
}

// View returns the worker's current membership view (Epoch 0 until a
// view is configured or adopted).
func (w *Worker) View() protocol.View {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.view.Clone()
}

// ApplyView hands the worker a membership view out of band (tests and
// orchestrators; the in-band path is a TypeView announcement or a
// TypeStaleEpoch refusal carrying the newer view). Views older than the
// current one are ignored.
func (w *Worker) ApplyView(v protocol.View) error {
	if err := v.Validate(); err != nil {
		return err
	}
	w.maybeApplyView(v)
	return nil
}

// handleViewMsg consumes one view-plane message on the receive pump.
// Always takes ownership of m.Data.
func (w *Worker) handleViewMsg(t uint8, m transport.Message) {
	defer transport.PutBuf(m.Data)
	switch t {
	case wire.TypeView, wire.TypeStaleEpoch:
		// Both carry a view; a stale-epoch refusal of our own traffic is
		// ALSO how we learn a view whose announcement we missed.
		vp, err := wire.DecodeView(m.Data)
		if err != nil {
			w.pump.badPackets.Add(1)
			obsPumpBad.Inc()
			return
		}
		if t == wire.TypeStaleEpoch {
			obsWorkerStaleEpochs.Inc()
		}
		w.maybeApplyView(viewFromPacket(vp))
	default:
		// TypeViewAck / TypeCheckpoint are aggregator-bound.
		w.pump.staleDrops.Add(1)
		obsPumpStale.Inc()
	}
}

// maybeApplyView adopts v if it is newer than the current view: swaps
// the aggregator list (future sends re-resolve AggregatorFor against
// it), acks the epoch to every aggregator of the new view, and notifies
// every in-flight operation so its driver rebinds and replays. Equal
// epochs re-ack only (the announcement may be a retransmission); older
// views are ignored.
func (w *Worker) maybeApplyView(v protocol.View) {
	w.mu.Lock()
	cur := w.view.Epoch
	if v.Epoch < cur || (v.Epoch == cur && cur == 0) {
		w.mu.Unlock()
		return
	}
	if v.Epoch == cur {
		w.mu.Unlock()
		w.sendViewAck(v)
		return
	}
	w.view = v.Clone()
	w.cfg.Aggregators = append([]int(nil), v.Aggregators...)
	qs := make([]*opQueue, 0, len(w.ops))
	for _, q := range w.ops {
		qs = append(qs, q)
	}
	w.mu.Unlock()
	obsWorkerViewChanges.Inc()
	obs.Emit(obs.EvViewChange, 0, int64(v.Epoch))
	w.sendViewAck(v)
	for _, q := range qs {
		q.notifyView(v)
	}
}

// sendViewAck binds this worker's connection to v's epoch on every
// aggregator of v. Best effort: a lost ack surfaces as a stale-epoch
// refusal, which carries the view and re-triggers the ack.
func (w *Worker) sendViewAck(v protocol.View) {
	vp := &wire.ViewPacket{Type: wire.TypeViewAck, WID: uint16(w.id), Epoch: v.Epoch}
	buf := wire.AppendView(transport.GetBuf(wire.EncodedViewSize(vp))[:0], vp)
	for _, agg := range v.Aggregators {
		_ = w.conn.Send(agg, buf)
	}
	transport.PutBuf(buf)
}

// RegisterPeer updates the transport's address book for a peer (the
// re-dial path after a view change introduces a standby the book never
// listed). No-op on transports that route by node ID (the in-process
// network). The address is canonicalized by the transport, so wildcard
// hosts registered after a rebind attribute identically to ones
// registered at construction.
func (w *Worker) RegisterPeer(id int, addr string) error {
	if r, ok := w.conn.(transport.PeerRegistrar); ok {
		return r.RegisterPeer(id, addr)
	}
	return nil
}

// BeginQuiesce suppresses the stall watchdog: periods with no progress
// while quiesced are expected (graceful drain, failover handoff), not
// wedges, so no postmortem fires. Nests; pair every call with
// EndQuiesce.
func (w *Worker) BeginQuiesce() { w.quiesce.Add(1) }

// EndQuiesce re-arms the stall watchdog.
func (w *Worker) EndQuiesce() { w.quiesce.Add(-1) }

func (w *Worker) quiesced() bool { return w.quiesce.Load() > 0 }
