package core

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"omnireduce/internal/tensor"
)

// allReduceSparse runs the key-value collective across all workers and
// returns each worker's result.
func (c *cluster) allReduceSparse(t testing.TB, inputs []*tensor.COO) []*tensor.COO {
	t.Helper()
	outs := make([]*tensor.COO, len(c.workers))
	errs := make([]error, len(c.workers))
	var wg sync.WaitGroup
	for i, w := range c.workers {
		wg.Add(1)
		go func(i int, w *Worker) {
			defer wg.Done()
			outs[i], errs[i] = w.AllReduceSparse(inputs[i])
		}(i, w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("AllReduceSparse timed out")
	}
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	return outs
}

func randomCOO(dim, nnz int, rng *rand.Rand) *tensor.COO {
	s := tensor.NewCOO(dim)
	perm := rng.Perm(dim)
	if nnz > dim {
		nnz = dim
	}
	keys := append([]int(nil), perm[:nnz]...)
	// COO requires ascending keys.
	for i := 0; i < len(keys); i++ {
		for j := i + 1; j < len(keys); j++ {
			if keys[j] < keys[i] {
				keys[i], keys[j] = keys[j], keys[i]
			}
		}
	}
	for _, k := range keys {
		s.Append(int32(k), float32(rng.NormFloat64())+0.1)
	}
	return s
}

func expectedSparseSum(inputs []*tensor.COO) *tensor.Dense {
	out := tensor.NewDense(inputs[0].Dim)
	for _, in := range inputs {
		out.Add(in.ToDense())
	}
	return out
}

func TestSparseAllReduceBasic(t *testing.T) {
	cfg := Config{Workers: 2, Reliable: true, BlockSize: 2}
	c := startCluster(t, cfg, 0, 1)
	a := tensor.NewCOO(20)
	a.Append(1, 1)
	a.Append(5, 2)
	a.Append(9, 3)
	b := tensor.NewCOO(20)
	b.Append(5, 10)
	b.Append(15, 4)
	outs := c.allReduceSparse(t, []*tensor.COO{a, b})
	want := expectedSparseSum([]*tensor.COO{a, b})
	for w, out := range outs {
		got := out.ToDense()
		if !got.ApproxEqual(want, 1e-5) {
			t.Fatalf("worker %d: got %v want %v", w, got.Data, want.Data)
		}
	}
}

func TestSparseAllReduceOverlapExtremes(t *testing.T) {
	cfg := Config{Workers: 3, Reliable: true, BlockSize: 8}
	t.Run("identical", func(t *testing.T) {
		c := startCluster(t, cfg, 0, 2)
		rng := rand.New(rand.NewSource(3))
		base := randomCOO(500, 60, rng)
		inputs := []*tensor.COO{base.Clone(), base.Clone(), base.Clone()}
		outs := c.allReduceSparse(t, inputs)
		want := expectedSparseSum(inputs)
		for w, out := range outs {
			if !out.ToDense().ApproxEqual(want, 1e-4) {
				t.Fatalf("worker %d mismatch", w)
			}
		}
	})
	t.Run("disjoint", func(t *testing.T) {
		c := startCluster(t, cfg, 0, 3)
		inputs := make([]*tensor.COO, 3)
		for w := range inputs {
			s := tensor.NewCOO(300)
			for k := w * 100; k < (w+1)*100; k += 3 {
				s.Append(int32(k), float32(k))
			}
			inputs[w] = s
		}
		outs := c.allReduceSparse(t, inputs)
		want := expectedSparseSum(inputs)
		for w, out := range outs {
			if !out.ToDense().ApproxEqual(want, 1e-4) {
				t.Fatalf("worker %d mismatch", w)
			}
		}
	})
}

func TestSparseAllReduceEmpty(t *testing.T) {
	cfg := Config{Workers: 2, Reliable: true, BlockSize: 4}
	c := startCluster(t, cfg, 0, 4)
	inputs := []*tensor.COO{tensor.NewCOO(100), tensor.NewCOO(100)}
	outs := c.allReduceSparse(t, inputs)
	for w, out := range outs {
		if out.Len() != 0 {
			t.Fatalf("worker %d: expected empty result, got %d entries", w, out.Len())
		}
	}
}

func TestSparseAllReduceOneEmptyWorker(t *testing.T) {
	cfg := Config{Workers: 2, Reliable: true, BlockSize: 4}
	c := startCluster(t, cfg, 0, 5)
	a := tensor.NewCOO(50)
	a.Append(7, 1.5)
	a.Append(33, -2)
	inputs := []*tensor.COO{a, tensor.NewCOO(50)}
	outs := c.allReduceSparse(t, inputs)
	want := expectedSparseSum(inputs)
	for w, out := range outs {
		if !out.ToDense().ApproxEqual(want, 1e-5) {
			t.Fatalf("worker %d mismatch", w)
		}
	}
}

func TestSparseAllReduceRequiresReliable(t *testing.T) {
	cfg := Config{Workers: 1, Reliable: false, Aggregators: []int{1}}
	c := startCluster(t, cfg, 0, 6)
	if _, err := c.workers[0].AllReduceSparse(tensor.NewCOO(10)); err == nil {
		t.Fatal("expected error for unreliable sparse mode")
	}
}

func TestSparseAllReduceKeyRange(t *testing.T) {
	cfg := Config{Workers: 1, Reliable: true}
	c := startCluster(t, cfg, 0, 7)
	s := &tensor.COO{Dim: 1 << 31, Keys: []int32{-2}, Values: []float32{1}} // 0xFFFFFFFE as uint32
	if _, err := c.workers[0].AllReduceSparse(s); err == nil {
		t.Fatal("expected key-range error")
	}
}

func TestSparseAllReduceSequential(t *testing.T) {
	cfg := Config{Workers: 2, Reliable: true, BlockSize: 16}
	c := startCluster(t, cfg, 0, 8)
	rng := rand.New(rand.NewSource(9))
	for round := 0; round < 3; round++ {
		inputs := []*tensor.COO{randomCOO(2_000, 150, rng), randomCOO(2_000, 150, rng)}
		outs := c.allReduceSparse(t, inputs)
		want := expectedSparseSum(inputs)
		for w, out := range outs {
			if !out.ToDense().ApproxEqual(want, 1e-4) {
				t.Fatalf("round %d worker %d mismatch", round, w)
			}
		}
	}
}

// Property: sparse AllReduce equals dense elementwise sum for arbitrary
// shapes and sparsity, and results arrive in strictly ascending key order.
func TestSparseAllReduceProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		workers := 1 + r.Intn(4)
		cfg := Config{Workers: workers, Reliable: true, BlockSize: 1 + r.Intn(32)}
		c := startCluster(t, cfg, 0, seed)
		dim := 10 + r.Intn(2_000)
		inputs := make([]*tensor.COO, workers)
		for w := range inputs {
			inputs[w] = randomCOO(dim, r.Intn(dim/2+1), r)
		}
		outs := c.allReduceSparse(t, inputs)
		want := expectedSparseSum(inputs)
		for _, out := range outs {
			// Keys strictly ascending is enforced by COO.Append already;
			// verify numerical equality.
			if !out.ToDense().ApproxEqual(want, 1e-3) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
