package core

import (
	"sync"
	"sync/atomic"

	"omnireduce/internal/metrics"
	"omnireduce/internal/obs"
	"omnireduce/internal/wire"
)

func init() {
	obs.RegisterPool("core_decode_state", DecodePoolBalance)
}

// decodeState is the reusable receive-side decode state of one driver
// loop: a packet shell, its float32 scratch arena, and a sparse packet
// shell. wire.DecodePacketInto repopulates the shell and carves block
// payloads from the arena, so a loop that owns a decodeState decodes
// every inbound packet without allocating once the arena has grown to the
// working-set packet size.
//
// The decoded contents are valid only until the next decode with the same
// state — exactly the lifetime protocol machines need, since they copy
// everything they keep during HandlePacket (see protocol.Msg ownership).
type decodeState struct {
	pkt     wire.Packet
	scratch []float32
	sparse  wire.SparsePacket
}

// decodeDense decodes buf into the reusable packet, recycling the scratch
// arena.
func (d *decodeState) decodeDense(buf []byte) (*wire.Packet, error) {
	arena, err := wire.DecodePacketInto(&d.pkt, d.scratch, buf)
	if err != nil {
		return nil, err
	}
	d.scratch = arena
	return &d.pkt, nil
}

// decodeSparse decodes buf into the reusable sparse packet.
func (d *decodeState) decodeSparse(buf []byte) (*wire.SparsePacket, error) {
	if err := wire.DecodeSparsePacketInto(&d.sparse, buf); err != nil {
		return nil, err
	}
	return &d.sparse, nil
}

// decodePool recycles decodeStates across operations. Long-lived loops
// (the aggregator's shards) own one state for their lifetime; per-call
// loops (a worker's AllReduce goroutine) borrow one here so consecutive
// collectives reuse warmed arenas instead of re-growing them.
var decodePool sync.Pool

var decodePoolHits, decodePoolMisses, decodePoolPuts atomic.Int64

func getDecodeState() *decodeState {
	obs.Emit(obs.EvDecodeStateGet, 0, 0)
	if v := decodePool.Get(); v != nil {
		decodePoolHits.Add(1)
		return v.(*decodeState)
	}
	decodePoolMisses.Add(1)
	return &decodeState{}
}

func putDecodeState(d *decodeState) {
	decodePoolPuts.Add(1)
	obs.Emit(obs.EvDecodeStatePut, 0, 0)
	decodePool.Put(d)
}

// DecodePoolBalance reports cumulative borrow (get) and return (put)
// counts for the decode-state pool, registered with the obs pool-leak
// audit. Long-lived owners (aggregator shards) return their state at
// shutdown, so a quiesced system balances exactly.
func DecodePoolBalance() (gets, puts int64) {
	return decodePoolHits.Load() + decodePoolMisses.Load(), decodePoolPuts.Load()
}

// DecodePoolCounters exports the decode-state pool's tallies. After
// warm-up, hits should dominate: each miss is one fresh arena that has
// to re-grow to packet size.
func DecodePoolCounters() *metrics.Counters {
	c := metrics.NewCounters()
	c.Add("decode_pool_hits", decodePoolHits.Load())
	c.Add("decode_pool_misses", decodePoolMisses.Load())
	c.Add("decode_pool_puts", decodePoolPuts.Load())
	return c
}
