package core

import (
	"testing"
	"time"
)

// steadyStateAllocBudget pins the per-collective allocation count on a
// warmed worker connection (2nd and later collectives, opState recycled
// from the free list), measured across the whole process — worker AND
// aggregator side. The protocol machines are pooled and their round state
// is generation-recycled (slots, accumulator arenas, emit shells), so
// steady-state rounds allocate nothing; what remains per collective is
// the operation envelope — the worker goroutine, the tensor view, the
// occasional pool Get, and the aggregator's archived result clone.
// Measured ~57 for this workload (64 blocks x 32); the budget leaves
// headroom for runtime jitter while still catching any reintroduced
// per-op churn (the op queue alone would add a 1024-slot channel per
// collective, and per-round slot churn would add hundreds).
const steadyStateAllocBudget = 120

// TestSteadyStateAllocsPerOp measures whole-process allocations per
// steady-state collective (worker and aggregator side together) and pins
// them, so a regression that reintroduces per-op churn on the reused
// datapath fails loudly rather than surfacing as a benchmark drift.
func TestSteadyStateAllocsPerOp(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated by the race runtime")
	}
	cfg := Config{
		Workers:            1,
		Aggregators:        []int{1},
		Reliable:           true,
		BlockSize:          32,
		DeterministicOrder: true,
	}
	c := startCluster(t, cfg, 0, 1)
	w := c.workers[0]
	data := make([]float32, 32*64)
	for i := range data {
		data[i] = float32(i%7) - 3
	}
	// Warm-up: grow the decode/encode arenas and park an opState on the
	// free list. Everything after this reuses that state.
	for i := 0; i < 5; i++ {
		if err := w.AllReduce(data); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(50, func() {
		if err := w.AllReduce(data); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("steady-state allocs per collective: %.1f", allocs)
	if allocs > steadyStateAllocBudget {
		t.Errorf("steady-state collective allocates %.1f objects, budget %d", allocs, steadyStateAllocBudget)
	}

	created, reused := w.OpStateStats()
	if created != 1 {
		t.Errorf("opStates created = %d, want 1 (sequential collectives must reuse one state)", created)
	}
	if reused < 50 {
		t.Errorf("opStates reused = %d, want >= 50", reused)
	}
}

// TestOpStateReuseAcrossOverlap verifies the free list under overlapping
// collectives: the states created is bounded by the maximum number of
// operations ever in flight at once, not by the operation count.
func TestOpStateReuseAcrossOverlap(t *testing.T) {
	cfg := Config{
		Workers:           2,
		Aggregators:       []int{2},
		Reliable:          false,
		BlockSize:         32,
		OpQueueLen:        64,
		RetransmitTimeout: time.Second,
	}
	c := startCluster(t, cfg, 0, 1)
	const rounds, inflight = 8, 3
	for r := 0; r < rounds; r++ {
		inputs := make([][][]float32, inflight)
		wants := make([][]float32, inflight)
		pendings := make([][]*Pending, inflight)
		for b := 0; b < inflight; b++ {
			inputs[b] = randomInputs(256, cfg.Workers, 0.5, int64(r*10+b))
			wants[b] = expectedSum(inputs[b])
			pendings[b] = make([]*Pending, cfg.Workers)
			for i, w := range c.workers {
				p, err := w.AllReduceAsync(inputs[b][i])
				if err != nil {
					t.Fatal(err)
				}
				pendings[b][i] = p
			}
		}
		for b := range pendings {
			want := wants[b]
			for i, p := range pendings[b] {
				if err := p.Wait(); err != nil {
					t.Fatalf("round %d bucket %d worker %d: %v", r, b, i, err)
				}
			}
			checkResult(t, inputs[b], want)
		}
	}
	for i, w := range c.workers {
		created, reused := w.OpStateStats()
		if created > inflight {
			t.Errorf("worker %d created %d opStates for %d concurrent ops", i, created, inflight)
		}
		if created+reused != rounds*inflight {
			t.Errorf("worker %d: created+reused = %d, want %d ops", i, created+reused, rounds*inflight)
		}
	}
}
