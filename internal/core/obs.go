package core

import (
	"omnireduce/internal/obs"
)

// Process-wide datapath metrics, registered on the obs default registry.
// All of them are plain atomic counters/histograms: updating one from
// the hot path is a single uncontended atomic add, within the
// observability layer's zero-allocation budget. Trace events (obs.Emit)
// ride alongside for per-collective detail and cost one atomic pointer
// load when no tracer is installed.
var (
	obsOpsStarted = obs.Default.Counter("worker_ops_started")
	obsOpsDone    = obs.Default.Counter("worker_ops_done")
	obsOpLatency  = obs.Default.Histogram("worker_op_latency_ns")
	obsTxBytes    = obs.Default.Counter("worker_tx_bytes")
	obsTxPackets  = obs.Default.Counter("worker_tx_packets")

	obsPumpDelivered = obs.Default.Counter("worker_pump_delivered")
	obsPumpStale     = obs.Default.Counter("worker_pump_stale_drops")
	obsPumpOverflow  = obs.Default.Counter("worker_pump_overflow_drops")
	obsPumpBad       = obs.Default.Counter("worker_pump_bad_packets")

	// Transmit-batch flush reasons (see txBatch) and opState free-list
	// behavior (see Worker.beginOp).
	obsWorkerFlushEnd  = obs.Default.Counter("worker_tx_flush_end")
	obsWorkerFlushFull = obs.Default.Counter("worker_tx_flush_full")
	obsAggFlushEnd     = obs.Default.Counter("agg_tx_flush_end")
	obsAggFlushFull    = obs.Default.Counter("agg_tx_flush_full")
	obsOpStateNew      = obs.Default.Counter("worker_opstate_alloc")
	obsOpStateReused   = obs.Default.Counter("worker_opstate_reuse")

	obsAggPackets = obs.Default.Counter("agg_rx_packets")
	obsAggTxBytes = obs.Default.Counter("agg_tx_bytes")
	obsAggStalls  = obs.Default.Counter("agg_router_stalls")
	obsAggRxSize  = obs.Default.Histogram("agg_rx_packet_bytes")

	// Multi-tenant admission and scheduling (see admitGate, tenant.DRR,
	// Aggregator.Drain). ops_admitted/ops_rejected count registry verdicts
	// on first-seen (tensor, worker, sender) triples; rejects_sent counts refusal
	// control packets actually transmitted (job rejects included);
	// sched_drops counts packets shed by a full per-tenant scheduler queue
	// on unreliable transports; late_drops counts admitted packets that
	// straggled in after their job closed. The per-tenant breakdown of the
	// admission counters lives on "tenant:<name>:..." metrics registered
	// by the tenant registry.
	obsAggCtrlPackets = obs.Default.Counter("agg_ctrl_packets")
	obsAggOpsAdmitted = obs.Default.Counter("agg_ops_admitted")
	obsAggOpsRejected = obs.Default.Counter("agg_ops_rejected")
	obsAggRejectsSent = obs.Default.Counter("agg_rejects_sent")
	obsAggSchedDrops  = obs.Default.Counter("agg_sched_drops")
	obsAggLateDrops   = obs.Default.Counter("agg_late_drops")
	obsAggDraining    = obs.Default.Gauge("agg_draining")
	obsAggDrains      = obs.Default.Counter("agg_drains_completed")

	// Elastic membership & failover. view_changes counts adopted views
	// (epoch bumps) per side; stale_epoch counters count typed refusals
	// issued (aggregator) and received (worker); ck_* count checkpoint
	// frames streamed to standbys and restored from them;
	// watchdog_suppressed counts stall-watchdog periods swallowed because
	// a drain or failover handoff was in progress.
	obsWorkerViewChanges  = obs.Default.Counter("worker_view_changes")
	obsWorkerStaleEpochs  = obs.Default.Counter("worker_stale_epoch_refusals")
	obsWatchdogSuppressed = obs.Default.Counter("worker_watchdog_suppressed")
	obsAggViewChanges     = obs.Default.Counter("agg_view_changes")
	obsAggStaleRefusals   = obs.Default.Counter("agg_stale_epoch_refusals")
	obsAggCkSent          = obs.Default.Counter("agg_ck_frames_sent")
	obsAggCkStored        = obs.Default.Counter("agg_ck_frames_stored")
	obsAggCkRestored      = obs.Default.Counter("agg_ck_restores")
)

// observeWorkerTx records one transmitted packet of n encoded bytes on
// the worker metrics and trace. Called from the worker txBatch after a
// successful flush. EvRetransmit is NOT emitted here: the worker machine
// itself emits it (slot- and round-tagged) so the live and simulated
// substrates produce identical repair-event streams.
func observeWorkerTx(tid uint32, n int) {
	obsTxPackets.Inc()
	obsTxBytes.Add(int64(n))
	obs.Emit(obs.EvPacketSent, tid, int64(n))
}

// observeAggTx is the aggregator txBatch's per-packet observation.
func observeAggTx(tid uint32, n int) {
	obsAggTxBytes.Add(int64(n))
	obs.Emit(obs.EvPacketSent, tid, int64(n))
}
