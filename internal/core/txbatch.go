package core

import (
	"omnireduce/internal/obs"
	"omnireduce/internal/protocol"
	"omnireduce/internal/transport"
	"omnireduce/internal/wire"
)

// txBatchMax is the most packets a driver accumulates before forcing a
// flush. It is deliberately larger than the transport's per-syscall batch
// (the transport re-chunks), so the flush boundary here only bounds how
// much encoded data sits buffered, not the syscall batch size.
const txBatchMax = 64

// txBatch is a driver's reusable transmit state: an encode arena plus the
// batch of outgoing datagrams carved from it, handed to the transport in
// bursts via transport.SendAll (one sendmmsg per chunk on the Linux fast
// path, a plain Send loop elsewhere). Allocated once per driver loop —
// a worker's persistent opState or an aggregator (shard) — and reused
// for every emit burst, so the steady-state transmit path allocates
// nothing.
//
// Emitted packets are machine-owned and read-only (see protocol.Emit);
// batching delays the Send, not the Encode, so the ownership story is
// unchanged: every emit is encoded into the arena before sendEmits
// returns, and the transport releases the buffers the moment the flush
// call returns.
type txBatch struct {
	// observe is called once per transmitted packet with its tensor ID
	// and encoded size; package-level funcs only (no closure captures).
	observe func(tid uint32, n int)
	// flushFull/flushEnd count why each flush happened: the batch filled
	// up mid-burst, or the burst ended. A full-heavy mix means emits come
	// in windows larger than txBatchMax; an end-heavy mix means bursts
	// are small and batching wins come from the transport's recv side.
	flushFull *obs.Counter
	flushEnd  *obs.Counter
	// dedup enables encode-once for consecutive emits sharing a packet
	// (aggregator result multicasts). Only safe when the machine
	// guarantees pointer-equal packets have identical contents, which the
	// aggregator's multicast fan-out does; worker machines keep it off.
	dedup bool
	// resolve, when set, maps an emit's destination — the machine speaks
	// job-relative worker IDs — to a transport node ID using the emit's
	// tensor ID. Multi-tenant aggregators route named jobs' results to
	// the nodes their workers registered from; nil keeps the historic
	// identity mapping (worker ID == node ID).
	resolve func(tid uint32, dst int) int

	enc  []byte
	outs []transport.Outgoing
	tids []uint32
}

// emitTID extracts the tensor ID an emit belongs to, for per-packet
// observation.
func emitTID(e *protocol.Emit) uint32 {
	if e.Packet != nil {
		return e.Packet.TensorID
	}
	if e.Sparse != nil {
		return e.Sparse.TensorID
	}
	return 0
}

// sendEmits encodes one emit burst into the arena and transmits it in
// batches. The arena is presized from the emits' exact encoded sizes
// (Emit.Size) so appends never reallocate — reallocation would invalidate
// the Outgoing sub-slices already queued for the flush.
func (b *txBatch) sendEmits(conn transport.Conn, emits []protocol.Emit) error {
	if len(emits) == 0 {
		return nil
	}
	total := 0
	for i := range emits {
		total += emits[i].Size
	}
	if cap(b.enc) < total {
		b.enc = make([]byte, 0, total)
	} else {
		b.enc = b.enc[:0]
	}
	arena := cap(b.enc)
	b.outs = b.outs[:0]
	b.tids = b.tids[:0]
	var lastPkt *wire.Packet
	var lastSparse *wire.SparsePacket
	var lastData []byte
	for i := range emits {
		e := &emits[i]
		data := lastData
		if !b.dedup || lastData == nil || e.Packet != lastPkt || e.Sparse != lastSparse {
			off := len(b.enc)
			b.enc = e.Encode(b.enc)
			data = b.enc[off:len(b.enc):len(b.enc)]
			lastPkt, lastSparse, lastData = e.Packet, e.Sparse, data
		}
		dst := e.Dst
		if b.resolve != nil {
			dst = b.resolve(emitTID(e), dst)
		}
		b.outs = append(b.outs, transport.Outgoing{To: dst, Data: data})
		b.tids = append(b.tids, emitTID(e))
		if len(b.outs) >= txBatchMax {
			if err := b.flush(conn, b.flushFull); err != nil {
				return err
			}
		}
	}
	if cap(b.enc) != arena {
		// Emit.Size understated an encoding and the arena grew, orphaning
		// every already-queued sub-slice. This is an encoder/Size bug; fail
		// loudly rather than transmit stale bytes.
		panic("core: emit Size smaller than its encoding")
	}
	return b.flush(conn, b.flushEnd)
}

// flush transmits the queued batch and records per-packet observations.
func (b *txBatch) flush(conn transport.Conn, reason *obs.Counter) error {
	if len(b.outs) == 0 {
		return nil
	}
	if err := transport.SendAll(conn, b.outs); err != nil {
		return err
	}
	reason.Inc()
	for i := range b.outs {
		b.observe(b.tids[i], len(b.outs[i].Data))
	}
	b.outs = b.outs[:0]
	b.tids = b.tids[:0]
	return nil
}
