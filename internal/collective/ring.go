package collective

// Ring AllReduce (Patarasuk & Yuan): the bandwidth-optimal dense algorithm
// NCCL and Gloo default to, used as the paper's main baseline. The vector
// is split into N segments; a reduce-scatter phase of N-1 steps leaves
// each rank holding the full sum of one segment, and an allgather phase of
// N-1 steps circulates the reduced segments. Each rank sends and receives
// 2(N-1)/N of the data.

// segment returns the [lo, hi) element range of segment s for n elements
// over p ranks.
func segment(s, p, n int) (int, int) {
	s = ((s % p) + p) % p
	return s * n / p, (s + 1) * n / p
}

// RingAllReduce sums data element-wise across all ranks in place.
func (c *Comm) RingAllReduce(data []float32) error {
	if c.n == 1 || len(data) == 0 {
		return nil
	}
	op := c.nextOp()
	right := (c.rank + 1) % c.n
	left := (c.rank - 1 + c.n) % c.n

	// Reduce-scatter: at step s, send segment (rank-s) right and reduce
	// segment (rank-s-1) arriving from the left.
	for s := 0; s < c.n-1; s++ {
		sendLo, sendHi := segment(c.rank-s, c.n, len(data))
		if err := c.send(right, op|uint64(s), f32Bytes(data[sendLo:sendHi])); err != nil {
			return err
		}
		buf, err := c.recv(left, op|uint64(s))
		if err != nil {
			return err
		}
		recvLo, recvHi := segment(c.rank-s-1, c.n, len(data))
		in := bytesF32(buf)
		if len(in) != recvHi-recvLo {
			return errSize("ring reduce-scatter", len(in), recvHi-recvLo)
		}
		for i, v := range in {
			data[recvLo+i] += v
		}
	}
	// AllGather: circulate the fully reduced segments.
	for s := 0; s < c.n-1; s++ {
		sendLo, sendHi := segment(c.rank+1-s, c.n, len(data))
		if err := c.send(right, op|uint64(64+s), f32Bytes(data[sendLo:sendHi])); err != nil {
			return err
		}
		buf, err := c.recv(left, op|uint64(64+s))
		if err != nil {
			return err
		}
		recvLo, recvHi := segment(c.rank-s, c.n, len(data))
		in := bytesF32(buf)
		if len(in) != recvHi-recvLo {
			return errSize("ring allgather", len(in), recvHi-recvLo)
		}
		copy(data[recvLo:recvHi], in)
	}
	return nil
}

// RingAllGather concatenates each rank's segment into out on every rank;
// out must be len(segment)*Size() long. This is the AllGather primitive
// AGsparse builds on.
func (c *Comm) RingAllGather(seg []float32, out []float32) error {
	if len(out) != len(seg)*c.n {
		return errSize("allgather output", len(out), len(seg)*c.n)
	}
	copy(out[c.rank*len(seg):], seg)
	if c.n == 1 {
		return nil
	}
	op := c.nextOp()
	right := (c.rank + 1) % c.n
	left := (c.rank - 1 + c.n) % c.n
	for s := 0; s < c.n-1; s++ {
		src := ((c.rank-s)%c.n + c.n) % c.n
		if err := c.send(right, op|uint64(s), f32Bytes(out[src*len(seg):(src+1)*len(seg)])); err != nil {
			return err
		}
		buf, err := c.recv(left, op|uint64(s))
		if err != nil {
			return err
		}
		dst := ((c.rank-s-1)%c.n + c.n) % c.n
		in := bytesF32(buf)
		if len(in) != len(seg) {
			return errSize("allgather", len(in), len(seg))
		}
		copy(out[dst*len(seg):], in)
	}
	return nil
}

// RingAllGatherVar gathers variable-length byte payloads from every rank;
// result[r] holds rank r's payload on every rank. Used by the sparse
// collectives, which exchange COO buffers of different sizes.
func (c *Comm) RingAllGatherVar(mine []byte) ([][]byte, error) {
	out := make([][]byte, c.n)
	out[c.rank] = mine
	if c.n == 1 {
		return out, nil
	}
	op := c.nextOp()
	right := (c.rank + 1) % c.n
	left := (c.rank - 1 + c.n) % c.n
	for s := 0; s < c.n-1; s++ {
		src := ((c.rank-s)%c.n + c.n) % c.n
		if err := c.send(right, op|uint64(s), out[src]); err != nil {
			return nil, err
		}
		buf, err := c.recv(left, op|uint64(s))
		if err != nil {
			return nil, err
		}
		dst := ((c.rank-s-1)%c.n + c.n) % c.n
		out[dst] = buf
	}
	return out, nil
}

type sizeError struct {
	where     string
	got, want int
}

func (e sizeError) Error() string {
	return "collective: " + e.where + " size mismatch"
}

func errSize(where string, got, want int) error {
	return sizeError{where, got, want}
}
