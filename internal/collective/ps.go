package collective

import (
	"encoding/binary"
	"fmt"

	"omnireduce/internal/tensor"
	"omnireduce/internal/transport"
)

// Parallax-style parameter server (§2.1): model state is sharded over
// server nodes; workers push gradients (dense shards or sparse key-value
// lists), servers reduce, and multicast the reduced shard back once every
// worker has pushed. Parallax's contribution is the hybrid split: dense
// tensors go through AllReduce, sparse tensors through the PS; the paper
// mimics its runtime profiler with an oracle that picks the faster path,
// which the benchmark harness reproduces.

// PS message types.
const (
	psPushDense uint8 = iota + 1
	psPushSparse
	psResultDense
	psResultSparse
)

// PSServer is one parameter-server shard. Drive with Run; it serves until
// its connection closes.
type PSServer struct {
	conn    transport.Conn
	workers int
	dense   map[uint32]*psDenseOp
	sparse  map[uint32]*psSparseOp
}

type psDenseOp struct {
	sum   []float32
	count int
}

type psSparseOp struct {
	sum   *tensor.COO
	count int
}

// NewPSServer creates a server expecting pushes from `workers` workers.
func NewPSServer(conn transport.Conn, workers int) *PSServer {
	return &PSServer{
		conn:    conn,
		workers: workers,
		dense:   make(map[uint32]*psDenseOp),
		sparse:  make(map[uint32]*psSparseOp),
	}
}

// Run processes pushes until the connection closes.
func (s *PSServer) Run() error {
	for {
		m, err := s.conn.Recv()
		if err != nil {
			if err == transport.ErrClosed {
				return nil
			}
			return err
		}
		if len(m.Data) < 5 {
			return fmt.Errorf("collective: short PS message")
		}
		typ := m.Data[0]
		op := binary.LittleEndian.Uint32(m.Data[1:])
		payload := m.Data[5:]
		switch typ {
		case psPushDense:
			st := s.dense[op]
			if st == nil {
				st = &psDenseOp{}
				s.dense[op] = st
			}
			in := bytesF32(payload)
			if st.sum == nil {
				st.sum = make([]float32, len(in))
			}
			if len(in) != len(st.sum) {
				return errSize("PS dense push", len(in), len(st.sum))
			}
			for i, v := range in {
				st.sum[i] += v
			}
			st.count++
			if st.count == s.workers {
				out := append([]byte{psResultDense, 0, 0, 0, 0}, f32Bytes(st.sum)...)
				binary.LittleEndian.PutUint32(out[1:], op)
				for w := 0; w < s.workers; w++ {
					if err := s.conn.Send(w, out); err != nil {
						return err
					}
				}
				delete(s.dense, op)
			}
		case psPushSparse:
			st := s.sparse[op]
			if st == nil {
				st = &psSparseOp{}
				s.sparse[op] = st
			}
			in, err := decodeCOO(payload)
			if err != nil {
				return err
			}
			if st.sum == nil {
				st.sum = tensor.NewCOO(in.Dim)
			}
			st.sum = st.sum.AddCOO(in)
			st.count++
			if st.count == s.workers {
				out := append([]byte{psResultSparse, 0, 0, 0, 0}, encodeCOO(st.sum)...)
				binary.LittleEndian.PutUint32(out[1:], op)
				for w := 0; w < s.workers; w++ {
					if err := s.conn.Send(w, out); err != nil {
						return err
					}
				}
				delete(s.sparse, op)
			}
		default:
			return fmt.Errorf("collective: unknown PS message type %d", typ)
		}
	}
}

// PSClient issues reductions against a set of server shards.
type PSClient struct {
	comm    *Comm
	servers []int
	opSeq   uint32
}

// NewPSClient wraps a communicator whose transport can also reach the
// given server node IDs.
func NewPSClient(comm *Comm, servers []int) *PSClient {
	return &PSClient{comm: comm, servers: servers}
}

// shardRange returns server shard s's element range for n elements.
func (c *PSClient) shardRange(s, n int) (int, int) {
	return s * n / len(c.servers), (s + 1) * n / len(c.servers)
}

// ReduceDense sums data across workers via the parameter servers, in place.
func (c *PSClient) ReduceDense(data []float32) error {
	c.opSeq++
	op := c.opSeq
	hdr := []byte{psPushDense, 0, 0, 0, 0}
	binary.LittleEndian.PutUint32(hdr[1:], op)
	for s, srv := range c.servers {
		lo, hi := c.shardRange(s, len(data))
		if err := c.comm.conn.Send(srv, append(append([]byte{}, hdr...), f32Bytes(data[lo:hi])...)); err != nil {
			return err
		}
	}
	for range c.servers {
		m, err := c.comm.conn.Recv()
		if err != nil {
			return err
		}
		if len(m.Data) < 5 || m.Data[0] != psResultDense {
			return fmt.Errorf("collective: unexpected PS reply type")
		}
		if binary.LittleEndian.Uint32(m.Data[1:]) != op {
			return fmt.Errorf("collective: PS reply for wrong op")
		}
		sIdx := indexOf(c.servers, m.From)
		if sIdx < 0 {
			return fmt.Errorf("collective: PS reply from unknown server %d", m.From)
		}
		lo, hi := c.shardRange(sIdx, len(data))
		vals := bytesF32(m.Data[5:])
		if len(vals) != hi-lo {
			return errSize("PS dense reply", len(vals), hi-lo)
		}
		copy(data[lo:hi], vals)
	}
	return nil
}

// ReduceSparse sums sparse tensors across workers via the servers and
// returns the global sum.
func (c *PSClient) ReduceSparse(in *tensor.COO) (*tensor.COO, error) {
	c.opSeq++
	op := c.opSeq
	hdr := []byte{psPushSparse, 0, 0, 0, 0}
	binary.LittleEndian.PutUint32(hdr[1:], op)
	for s, srv := range c.servers {
		lo, hi := c.shardRange(s, in.Dim)
		part := sliceCOO(in, int32(lo), int32(hi))
		if err := c.comm.conn.Send(srv, append(append([]byte{}, hdr...), encodeCOO(part)...)); err != nil {
			return nil, err
		}
	}
	out := tensor.NewCOO(in.Dim)
	parts := make([]*tensor.COO, len(c.servers))
	for range c.servers {
		m, err := c.comm.conn.Recv()
		if err != nil {
			return nil, err
		}
		if len(m.Data) < 5 || m.Data[0] != psResultSparse {
			return nil, fmt.Errorf("collective: unexpected PS reply type")
		}
		if binary.LittleEndian.Uint32(m.Data[1:]) != op {
			return nil, fmt.Errorf("collective: PS reply for wrong op")
		}
		sIdx := indexOf(c.servers, m.From)
		if sIdx < 0 {
			return nil, fmt.Errorf("collective: PS reply from unknown server %d", m.From)
		}
		part, err := decodeCOO(m.Data[5:])
		if err != nil {
			return nil, err
		}
		parts[sIdx] = part
	}
	for s, part := range parts {
		lo, _ := c.shardRange(s, in.Dim)
		for i, k := range part.Keys {
			out.Keys = append(out.Keys, k+int32(lo))
			out.Values = append(out.Values, part.Values[i])
		}
	}
	return out, nil
}

func indexOf(s []int, v int) int {
	for i, x := range s {
		if x == v {
			return i
		}
	}
	return -1
}
