package collective

import (
	"encoding/binary"
	"fmt"
	"math"

	"omnireduce/internal/tensor"
)

// AGsparse is PyTorch's AllGather-based sparse AllReduce (§2.1): every
// rank gathers all ranks' key and value lists, then performs a local
// reduction. It implicitly assumes little index overlap and needs memory
// proportional to N times the per-rank input.

// encodeCOO serializes a COO tensor: dim uint32, count uint32, keys,
// values (little-endian).
func encodeCOO(s *tensor.COO) []byte {
	buf := make([]byte, 8+8*len(s.Keys))
	binary.LittleEndian.PutUint32(buf, uint32(s.Dim))
	binary.LittleEndian.PutUint32(buf[4:], uint32(len(s.Keys)))
	off := 8
	for _, k := range s.Keys {
		binary.LittleEndian.PutUint32(buf[off:], uint32(k))
		off += 4
	}
	for _, v := range s.Values {
		binary.LittleEndian.PutUint32(buf[off:], math.Float32bits(v))
		off += 4
	}
	return buf
}

func decodeCOO(buf []byte) (*tensor.COO, error) {
	if len(buf) < 8 {
		return nil, fmt.Errorf("collective: short COO buffer")
	}
	dim := int(binary.LittleEndian.Uint32(buf))
	n := int(binary.LittleEndian.Uint32(buf[4:]))
	if len(buf) < 8+8*n {
		return nil, fmt.Errorf("collective: truncated COO buffer (%d entries)", n)
	}
	s := &tensor.COO{Dim: dim, Keys: make([]int32, n), Values: make([]float32, n)}
	off := 8
	for i := 0; i < n; i++ {
		s.Keys[i] = int32(binary.LittleEndian.Uint32(buf[off:]))
		off += 4
	}
	for i := 0; i < n; i++ {
		s.Values[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[off:]))
		off += 4
	}
	return s, nil
}

// AGsparseAllReduce gathers every rank's sparse tensor and reduces
// locally, returning the global sparse sum (keys ascending).
func (c *Comm) AGsparseAllReduce(in *tensor.COO) (*tensor.COO, error) {
	parts, err := c.RingAllGatherVar(encodeCOO(in))
	if err != nil {
		return nil, err
	}
	out := in.Clone()
	for r, buf := range parts {
		if r == c.rank {
			continue
		}
		other, err := decodeCOO(buf)
		if err != nil {
			return nil, err
		}
		out = out.AddCOO(other)
	}
	return out, nil
}
