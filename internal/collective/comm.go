// Package collective implements the comparison collectives the paper
// evaluates OmniReduce against (§2.1, §6.1): ring AllReduce (the NCCL/Gloo
// default), recursive-doubling AllReduce (latency-optimal small-message
// case), ring AllGather, AGsparse sparse AllReduce (PyTorch's
// AllGather-based method), SparCML's SSAR/DSAR split-allgather methods,
// and a Parallax-style parameter server. All run over the same transport
// abstraction as OmniReduce, so correctness tests and wall-clock
// benchmarks compare like with like.
package collective

import (
	"encoding/binary"
	"fmt"
	"math"

	"omnireduce/internal/transport"
)

// Comm wraps a transport endpoint with tagged point-to-point matching:
// messages carry a 8-byte (tag, op) header and Recv calls can wait for a
// specific (peer, tag) pair while buffering others. Collectives on a Comm
// must be issued in the same order by all participants.
type Comm struct {
	conn    transport.Conn
	n       int
	rank    int
	opSeq   uint32
	pending map[uint64][][]byte
}

// NewComm creates a communicator for a group of n workers with ranks equal
// to their transport node IDs 0..n-1.
func NewComm(conn transport.Conn, n int) (*Comm, error) {
	rank := conn.LocalID()
	if rank < 0 || rank >= n {
		return nil, fmt.Errorf("collective: rank %d out of range [0,%d)", rank, n)
	}
	return &Comm{conn: conn, n: n, rank: rank, pending: make(map[uint64][][]byte)}, nil
}

// Rank returns this participant's rank.
func (c *Comm) Rank() int { return c.rank }

// Size returns the group size.
func (c *Comm) Size() int { return c.n }

// Close closes the underlying transport endpoint.
func (c *Comm) Close() error { return c.conn.Close() }

func key(from int, tag uint64) uint64 { return uint64(from)<<48 | tag }

// send transmits payload to peer under the given tag (op-scoped).
func (c *Comm) send(to int, tag uint64, payload []byte) error {
	buf := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint64(buf, tag)
	copy(buf[8:], payload)
	return c.conn.Send(to, buf)
}

// recv blocks until a message from `from` with the given tag arrives,
// buffering any other messages that arrive first.
func (c *Comm) recv(from int, tag uint64) ([]byte, error) {
	k := key(from, tag)
	if q := c.pending[k]; len(q) > 0 {
		m := q[0]
		c.pending[k] = q[1:]
		return m, nil
	}
	for {
		m, err := c.conn.Recv()
		if err != nil {
			return nil, err
		}
		if len(m.Data) < 8 {
			return nil, fmt.Errorf("collective: short message from %d", m.From)
		}
		mtag := binary.LittleEndian.Uint64(m.Data)
		payload := m.Data[8:]
		if m.From == from && mtag == tag {
			return payload, nil
		}
		mk := key(m.From, mtag)
		c.pending[mk] = append(c.pending[mk], payload)
	}
}

// nextOp allocates a fresh tag namespace for one collective operation.
// Tags are (op<<16 | step).
func (c *Comm) nextOp() uint64 {
	c.opSeq++
	return uint64(c.opSeq) << 16
}

// Float32 codec helpers shared by the collectives in this package.

func f32Bytes(v []float32) []byte {
	out := make([]byte, 4*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint32(out[4*i:], math.Float32bits(x))
	}
	return out
}

func bytesF32(b []byte) []float32 {
	out := make([]float32, len(b)/4)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out
}
