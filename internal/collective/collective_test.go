package collective

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"omnireduce/internal/tensor"
	"omnireduce/internal/transport"
)

// group creates n communicators over an in-process network.
func group(t testing.TB, n int) []*Comm {
	t.Helper()
	nw := transport.NewNetwork(n, 4096)
	cs := make([]*Comm, n)
	for i := 0; i < n; i++ {
		c, err := NewComm(nw.Conn(i), n)
		if err != nil {
			t.Fatal(err)
		}
		cs[i] = c
	}
	t.Cleanup(func() {
		for _, c := range cs {
			c.Close()
		}
	})
	return cs
}

// runAll invokes fn concurrently on every rank and waits.
func runAll(t testing.TB, n int, fn func(rank int) error) {
	t.Helper()
	var wg sync.WaitGroup
	errs := make([]error, n)
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			errs[r] = fn(r)
		}(r)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("collective timed out")
	}
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
}

func randVecs(n, workers int, seed int64) [][]float32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float32, workers)
	for w := range out {
		out[w] = make([]float32, n)
		for i := range out[w] {
			out[w][i] = float32(rng.NormFloat64())
		}
	}
	return out
}

func sumVecs(in [][]float32) []float32 {
	out := make([]float32, len(in[0]))
	for _, v := range in {
		for i, x := range v {
			out[i] += x
		}
	}
	return out
}

func checkVecs(t testing.TB, got [][]float32, want []float32, tol float64) {
	t.Helper()
	for r, g := range got {
		for i := range want {
			d := float64(g[i]) - float64(want[i])
			if d > tol || d < -tol {
				t.Fatalf("rank %d elem %d: got %v want %v", r, i, g[i], want[i])
			}
		}
	}
}

func TestRingAllReduce(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 8} {
		cs := group(t, n)
		data := randVecs(10_000, n, int64(n))
		want := sumVecs(data)
		runAll(t, n, func(r int) error { return cs[r].RingAllReduce(data[r]) })
		checkVecs(t, data, want, 1e-3)
	}
}

func TestRingAllReduceSmall(t *testing.T) {
	// Vectors shorter than the rank count exercise empty segments.
	cs := group(t, 4)
	data := randVecs(3, 4, 7)
	want := sumVecs(data)
	runAll(t, 4, func(r int) error { return cs[r].RingAllReduce(data[r]) })
	checkVecs(t, data, want, 1e-4)
}

func TestRecursiveDoublingAllReduce(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 6, 7, 8} {
		cs := group(t, n)
		data := randVecs(1_000, n, int64(n)*3)
		want := sumVecs(data)
		runAll(t, n, func(r int) error { return cs[r].RecursiveDoublingAllReduce(data[r]) })
		checkVecs(t, data, want, 1e-3)
	}
}

func TestRingAllGather(t *testing.T) {
	n := 4
	cs := group(t, n)
	segs := randVecs(100, n, 9)
	outs := make([][]float32, n)
	runAll(t, n, func(r int) error {
		outs[r] = make([]float32, 100*n)
		return cs[r].RingAllGather(segs[r], outs[r])
	})
	var want []float32
	for r := 0; r < n; r++ {
		want = append(want, segs[r]...)
	}
	checkVecs(t, outs, want, 0)
}

func TestRingAllGatherVar(t *testing.T) {
	n := 3
	cs := group(t, n)
	payloads := [][]byte{{1}, {2, 2}, {3, 3, 3}}
	outs := make([][][]byte, n)
	runAll(t, n, func(r int) error {
		var err error
		outs[r], err = cs[r].RingAllGatherVar(payloads[r])
		return err
	})
	for r := 0; r < n; r++ {
		for p := 0; p < n; p++ {
			if len(outs[r][p]) != p+1 {
				t.Fatalf("rank %d: payload %d has len %d", r, p, len(outs[r][p]))
			}
		}
	}
}

func randCOO(dim, nnz int, rng *rand.Rand) *tensor.COO {
	d := tensor.NewDense(dim)
	for _, i := range rng.Perm(dim)[:nnz] {
		d.Data[i] = float32(rng.NormFloat64()) + 0.01
	}
	return tensor.FromDense(d)
}

func TestAGsparseAllReduce(t *testing.T) {
	n := 4
	cs := group(t, n)
	rng := rand.New(rand.NewSource(11))
	ins := make([]*tensor.COO, n)
	for r := range ins {
		ins[r] = randCOO(2_000, 100, rng)
	}
	wantDense := tensor.NewDense(2_000)
	for _, in := range ins {
		wantDense.Add(in.ToDense())
	}
	outs := make([]*tensor.COO, n)
	runAll(t, n, func(r int) error {
		var err error
		outs[r], err = cs[r].AGsparseAllReduce(ins[r])
		return err
	})
	for r, out := range outs {
		if !out.ToDense().ApproxEqual(wantDense, 1e-4) {
			t.Fatalf("rank %d mismatch", r)
		}
	}
}

func TestSSARSplitAllgather(t *testing.T) {
	for _, n := range []int{2, 3, 5} {
		cs := group(t, n)
		rng := rand.New(rand.NewSource(int64(n) * 13))
		ins := make([]*tensor.COO, n)
		for r := range ins {
			ins[r] = randCOO(1_500, 120, rng)
		}
		want := tensor.NewDense(1_500)
		for _, in := range ins {
			want.Add(in.ToDense())
		}
		outs := make([]*tensor.COO, n)
		runAll(t, n, func(r int) error {
			var err error
			outs[r], err = cs[r].SSARSplitAllgather(ins[r])
			return err
		})
		for r, out := range outs {
			if !out.ToDense().ApproxEqual(want, 1e-4) {
				t.Fatalf("n=%d rank %d mismatch", n, r)
			}
		}
	}
}

func TestDSARSplitAllgatherDensifies(t *testing.T) {
	// Heavy overlap at every rank forces partitions past rho and into the
	// dense representation.
	n := 3
	cs := group(t, n)
	rng := rand.New(rand.NewSource(17))
	base := randCOO(900, 800, rng) // very dense
	ins := []*tensor.COO{base.Clone(), base.Clone(), base.Clone()}
	want := tensor.NewDense(900)
	for _, in := range ins {
		want.Add(in.ToDense())
	}
	outs := make([]*tensor.Dense, n)
	runAll(t, n, func(r int) error {
		var err error
		outs[r], err = cs[r].DSARSplitAllgather(ins[r])
		return err
	})
	for r, out := range outs {
		if !out.ApproxEqual(want, 1e-4) {
			t.Fatalf("rank %d mismatch", r)
		}
	}
}

func TestDSARSplitAllgatherSparseCase(t *testing.T) {
	n := 4
	cs := group(t, n)
	rng := rand.New(rand.NewSource(19))
	ins := make([]*tensor.COO, n)
	for r := range ins {
		ins[r] = randCOO(4_000, 50, rng) // sparse: stays in COO form
	}
	want := tensor.NewDense(4_000)
	for _, in := range ins {
		want.Add(in.ToDense())
	}
	outs := make([]*tensor.Dense, n)
	runAll(t, n, func(r int) error {
		var err error
		outs[r], err = cs[r].DSARSplitAllgather(ins[r])
		return err
	})
	for r, out := range outs {
		if !out.ApproxEqual(want, 1e-4) {
			t.Fatalf("rank %d mismatch", r)
		}
	}
}

func TestParameterServerDense(t *testing.T) {
	const n, servers = 3, 2
	nw := transport.NewNetwork(n, 4096)
	serverIDs := []int{n, n + 1}
	for _, id := range serverIDs {
		conn := nw.AddNode(id)
		srv := NewPSServer(conn, n)
		go srv.Run()
		defer conn.Close()
	}
	cs := make([]*Comm, n)
	clients := make([]*PSClient, n)
	for r := 0; r < n; r++ {
		c, err := NewComm(nw.Conn(r), n)
		if err != nil {
			t.Fatal(err)
		}
		cs[r] = c
		clients[r] = NewPSClient(c, serverIDs)
	}
	defer func() {
		for _, c := range cs {
			c.Close()
		}
	}()
	data := randVecs(5_000, n, 23)
	want := sumVecs(data)
	runAll(t, n, func(r int) error { return clients[r].ReduceDense(data[r]) })
	checkVecs(t, data, want, 1e-3)
}

func TestParameterServerSparse(t *testing.T) {
	const n, servers = 2, 2
	nw := transport.NewNetwork(n, 4096)
	serverIDs := []int{n, n + 1}
	for _, id := range serverIDs {
		conn := nw.AddNode(id)
		srv := NewPSServer(conn, n)
		go srv.Run()
		defer conn.Close()
	}
	clients := make([]*PSClient, n)
	for r := 0; r < n; r++ {
		c, err := NewComm(nw.Conn(r), n)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		clients[r] = NewPSClient(c, serverIDs)
	}
	rng := rand.New(rand.NewSource(29))
	ins := []*tensor.COO{randCOO(1_000, 80, rng), randCOO(1_000, 80, rng)}
	want := tensor.NewDense(1_000)
	for _, in := range ins {
		want.Add(in.ToDense())
	}
	outs := make([]*tensor.COO, n)
	runAll(t, n, func(r int) error {
		var err error
		outs[r], err = clients[r].ReduceSparse(ins[r])
		return err
	})
	for r, out := range outs {
		if !out.ToDense().ApproxEqual(want, 1e-4) {
			t.Fatalf("rank %d mismatch", r)
		}
	}
}

func TestCOOCodec(t *testing.T) {
	s := tensor.NewCOO(50)
	s.Append(3, 1.5)
	s.Append(10, -2)
	got, err := decodeCOO(encodeCOO(s))
	if err != nil {
		t.Fatal(err)
	}
	if got.Dim != 50 || got.Len() != 2 || got.Keys[1] != 10 || got.Values[0] != 1.5 {
		t.Fatalf("round trip: %+v", got)
	}
	if _, err := decodeCOO([]byte{1, 2}); err == nil {
		t.Fatal("short buffer accepted")
	}
	if _, err := decodeCOO([]byte{0, 0, 0, 0, 255, 0, 0, 0}); err == nil {
		t.Fatal("truncated entries accepted")
	}
}

func TestSegmentPartition(t *testing.T) {
	// Segments must tile [0, n).
	for _, tc := range []struct{ p, n int }{{4, 100}, {3, 10}, {8, 7}, {1, 5}} {
		covered := 0
		for s := 0; s < tc.p; s++ {
			lo, hi := segment(s, tc.p, tc.n)
			covered += hi - lo
		}
		if covered != tc.n {
			t.Fatalf("p=%d n=%d covered %d", tc.p, tc.n, covered)
		}
	}
	// Negative wraps.
	lo, hi := segment(-1, 4, 100)
	if lo != 75 || hi != 100 {
		t.Fatalf("segment(-1) = [%d,%d)", lo, hi)
	}
}

// Property: ring and recursive doubling agree with the serial sum.
func TestAllReduceAlgorithmsAgreeProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		size := 1 + rng.Intn(2_000)
		data := randVecs(size, n, seed)
		want := sumVecs(data)

		ring := make([][]float32, n)
		rd := make([][]float32, n)
		for r := 0; r < n; r++ {
			ring[r] = append([]float32(nil), data[r]...)
			rd[r] = append([]float32(nil), data[r]...)
		}
		cs := group(t, n)
		runAll(t, n, func(r int) error { return cs[r].RingAllReduce(ring[r]) })
		cs2 := group(t, n)
		runAll(t, n, func(r int) error { return cs2[r].RecursiveDoublingAllReduce(rd[r]) })
		for r := 0; r < n; r++ {
			for i := range want {
				if d := float64(ring[r][i]) - float64(want[i]); d > 1e-3 || d < -1e-3 {
					return false
				}
				if d := float64(rd[r][i]) - float64(want[i]); d > 1e-3 || d < -1e-3 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRingAllReduceLive(b *testing.B) {
	const n = 4
	cs := group(b, n)
	data := randVecs(1<<20, n, 1)
	b.SetBytes(int64(4 << 20))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for r := 0; r < n; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				if err := cs[r].RingAllReduce(data[r]); err != nil {
					b.Error(err)
				}
			}(r)
		}
		wg.Wait()
	}
}

func BenchmarkAGsparseLive(b *testing.B) {
	const n = 4
	cs := group(b, n)
	rng := rand.New(rand.NewSource(7))
	ins := make([]*tensor.COO, n)
	for r := range ins {
		ins[r] = randCOO(1<<18, 1<<12, rng)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for r := 0; r < n; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				if _, err := cs[r].AGsparseAllReduce(ins[r]); err != nil {
					b.Error(err)
				}
			}(r)
		}
		wg.Wait()
	}
}

func TestCommAccessors(t *testing.T) {
	cs := group(t, 3)
	if cs[1].Rank() != 1 || cs[1].Size() != 3 {
		t.Fatalf("rank/size = %d/%d", cs[1].Rank(), cs[1].Size())
	}
	if errSize("x", 1, 2).Error() == "" {
		t.Fatal("empty size error")
	}
}
