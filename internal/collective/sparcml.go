package collective

import (
	"fmt"

	"omnireduce/internal/tensor"
)

// SparCML's split-allgather methods (§2.1): the input key space is split
// into N partitions, one per rank. Phase 1 routes each rank's entries to
// the partition owner, which reduces them; phase 2 is a concatenating
// AllGather of the reduced partitions.
//
// SSAR (static sparse AllReduce) keeps the sparse representation
// throughout. DSAR (dynamic) switches a partition to the dense
// representation when its reduced size crosses the paper's threshold
// rho = n*cv/(ci+cv) (half the partition's dense size for 4-byte keys and
// values), bounding worst-case blow-up when overlaps densify the result.

// partitionRange returns partition p's key range over dim keys and n ranks.
func partitionRange(p, n, dim int) (int32, int32) {
	return int32(p * dim / n), int32((p + 1) * dim / n)
}

// sliceCOO extracts the entries of s with lo <= key < hi, re-keyed
// relative to lo, as a COO of dimension hi-lo.
func sliceCOO(s *tensor.COO, lo, hi int32) *tensor.COO {
	out := tensor.NewCOO(int(hi - lo))
	for i, k := range s.Keys {
		if k >= lo && k < hi {
			out.Keys = append(out.Keys, k-lo)
			out.Values = append(out.Values, s.Values[i])
		}
	}
	return out
}

// SSARSplitAllgather performs SparCML's SSAR_Split_allgather and returns
// the global sparse sum.
func (c *Comm) SSARSplitAllgather(in *tensor.COO) (*tensor.COO, error) {
	reduced, err := c.splitReduce(in)
	if err != nil {
		return nil, err
	}
	// Phase 2: concatenating AllGather of the sparse partitions.
	parts, err := c.RingAllGatherVar(encodeCOO(reduced))
	if err != nil {
		return nil, err
	}
	out := tensor.NewCOO(in.Dim)
	for p, buf := range parts {
		lo, _ := partitionRange(p, c.n, in.Dim)
		var part *tensor.COO
		if p == c.rank {
			part = reduced
		} else {
			if part, err = decodeCOO(buf); err != nil {
				return nil, err
			}
		}
		for i, k := range part.Keys {
			out.Keys = append(out.Keys, k+lo)
			out.Values = append(out.Values, part.Values[i])
		}
	}
	return out, nil
}

// splitReduce is phase 1 shared by SSAR and DSAR: deliver each partition's
// entries to its owner, which merges them sparsely.
func (c *Comm) splitReduce(in *tensor.COO) (*tensor.COO, error) {
	op := c.nextOp()
	// Send each partition slice to its owner.
	for p := 0; p < c.n; p++ {
		if p == c.rank {
			continue
		}
		lo, hi := partitionRange(p, c.n, in.Dim)
		if err := c.send(p, op|uint64(1), encodeCOO(sliceCOO(in, lo, hi))); err != nil {
			return nil, err
		}
	}
	lo, hi := partitionRange(c.rank, c.n, in.Dim)
	reduced := sliceCOO(in, lo, hi)
	for p := 0; p < c.n; p++ {
		if p == c.rank {
			continue
		}
		buf, err := c.recv(p, op|uint64(1))
		if err != nil {
			return nil, err
		}
		part, err := decodeCOO(buf)
		if err != nil {
			return nil, err
		}
		reduced = reduced.AddCOO(part)
	}
	return reduced, nil
}

// DSARSplitAllgather performs SparCML's DSAR_Split_allgather and returns
// the global sum densely (the dynamic representation's output format once
// any partition has densified).
func (c *Comm) DSARSplitAllgather(in *tensor.COO) (*tensor.Dense, error) {
	reduced, err := c.splitReduce(in)
	if err != nil {
		return nil, err
	}
	lo, hi := partitionRange(c.rank, c.n, in.Dim)
	partDim := int(hi - lo)
	// Dynamic switch: above rho = partDim*cv/(ci+cv) = partDim/2 entries,
	// the dense representation is smaller.
	var payload []byte
	if reduced.Len() > partDim/2 {
		payload = append([]byte{1}, f32Bytes(reduced.ToDense().Data)...)
	} else {
		payload = append([]byte{0}, encodeCOO(reduced)...)
	}
	parts, err := c.RingAllGatherVar(payload)
	if err != nil {
		return nil, err
	}
	out := tensor.NewDense(in.Dim)
	for p, buf := range parts {
		if len(buf) == 0 {
			return nil, fmt.Errorf("collective: empty DSAR partition from %d", p)
		}
		plo, phi := partitionRange(p, c.n, in.Dim)
		switch buf[0] {
		case 1:
			vals := bytesF32(buf[1:])
			if len(vals) != int(phi-plo) {
				return nil, errSize("DSAR dense partition", len(vals), int(phi-plo))
			}
			copy(out.Data[plo:phi], vals)
		case 0:
			part, err := decodeCOO(buf[1:])
			if err != nil {
				return nil, err
			}
			for i, k := range part.Keys {
				out.Data[plo+k] = part.Values[i]
			}
		default:
			return nil, fmt.Errorf("collective: bad DSAR format byte %d", buf[0])
		}
	}
	return out, nil
}
