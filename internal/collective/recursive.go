package collective

// Recursive-doubling AllReduce: latency-optimal for small messages (log N
// rounds of full-vector exchange), the algorithm SparCML's cost model
// selects for the small-data regime (§2.1). Non-power-of-two group sizes
// use the standard MPICH pre/post phases: the first 2*rem ranks pair up,
// even ranks fold their vector into their odd neighbour and sit out the
// doubling phase, then receive the final result back.

// RecursiveDoublingAllReduce sums data element-wise across all ranks in
// place.
func (c *Comm) RecursiveDoublingAllReduce(data []float32) error {
	if c.n == 1 || len(data) == 0 {
		return nil
	}
	op := c.nextOp()
	pof2 := 1
	for pof2*2 <= c.n {
		pof2 *= 2
	}
	rem := c.n - pof2

	addFrom := func(tag uint64, from int) error {
		buf, err := c.recv(from, tag)
		if err != nil {
			return err
		}
		in := bytesF32(buf)
		if len(in) != len(data) {
			return errSize("recursive doubling", len(in), len(data))
		}
		for i, v := range in {
			data[i] += v
		}
		return nil
	}

	newRank := -1
	switch {
	case c.rank < 2*rem && c.rank%2 == 0:
		// Fold into the odd neighbour, then wait for the result.
		if err := c.send(c.rank+1, op|1, f32Bytes(data)); err != nil {
			return err
		}
	case c.rank < 2*rem:
		if err := addFrom(op|1, c.rank-1); err != nil {
			return err
		}
		newRank = c.rank / 2
	default:
		newRank = c.rank - rem
	}

	if newRank >= 0 {
		toRank := func(nr int) int {
			if nr < rem {
				return nr*2 + 1
			}
			return nr + rem
		}
		for mask := 1; mask < pof2; mask <<= 1 {
			partner := toRank(newRank ^ mask)
			step := uint64(2 + mask)
			if err := c.send(partner, op|step, f32Bytes(data)); err != nil {
				return err
			}
			if err := addFrom(op|step, partner); err != nil {
				return err
			}
		}
	}

	// Post phase: odd ranks return the result to their even neighbour.
	if c.rank < 2*rem {
		if c.rank%2 == 0 {
			buf, err := c.recv(c.rank+1, op|2)
			if err != nil {
				return err
			}
			copy(data, bytesF32(buf))
		} else {
			if err := c.send(c.rank-1, op|2, f32Bytes(data)); err != nil {
				return err
			}
		}
	}
	return nil
}
