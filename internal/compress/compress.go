// Package compress implements the gradient compression methods of §4:
// the paper's block-based sparsifiers (Block Random-k, Block Top-k, Block
// Top-k Ratio, Block Threshold) plus the element-wise baselines they
// generalize (Random-k, Top-k, Threshold), and the error-feedback memory
// that makes δ-compressors converge (Karimireddy et al., referenced as
// [30] in the paper; Appendix C proves Block Random-k and Block Top-k are
// δ-compressors with δ = k/b).
//
// A Compressor maps a gradient to a sparsified gradient of the same shape
// (zeros outside the selected support), which is exactly the input format
// OmniReduce's block-skipping AllReduce accelerates.
package compress

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"omnireduce/internal/tensor"
)

// Compressor sparsifies a gradient in place of a dense tensor: the result
// has the same length with non-selected elements zeroed.
type Compressor interface {
	// Compress writes the sparsified gradient into dst (same length as
	// src). dst and src may alias.
	Compress(dst, src []float32)
	// Name identifies the method in reports.
	Name() string
}

// blockIndexRange returns block b's element range.
func blockIndexRange(b, bs, n int) (int, int) {
	lo := b * bs
	hi := lo + bs
	if hi > n {
		hi = n
	}
	return lo, hi
}

func numBlocks(n, bs int) int { return (n + bs - 1) / bs }

// keepBlocks zeroes everything outside the selected blocks.
func keepBlocks(dst, src []float32, bs int, selected map[int]bool) {
	for b := 0; b < numBlocks(len(src), bs); b++ {
		lo, hi := blockIndexRange(b, bs, len(src))
		if selected[b] {
			copy(dst[lo:hi], src[lo:hi])
		} else {
			clear(dst[lo:hi])
		}
	}
}

// BlockRandomK selects K random blocks of size BS (§4: "Block Random-k").
type BlockRandomK struct {
	BS  int
	K   int
	Rng *rand.Rand
}

// Name implements Compressor.
func (c *BlockRandomK) Name() string { return fmt.Sprintf("block-random-%d", c.K) }

// Compress implements Compressor.
func (c *BlockRandomK) Compress(dst, src []float32) {
	nb := numBlocks(len(src), c.BS)
	k := c.K
	if k > nb {
		k = nb
	}
	sel := make(map[int]bool, k)
	for _, b := range c.Rng.Perm(nb)[:k] {
		sel[b] = true
	}
	keepBlocks(dst, src, c.BS, sel)
}

// blockScoreTopK selects the K blocks maximizing score(b).
func blockScoreTopK(n, bs, k int, score func(lo, hi int) float64) map[int]bool {
	nb := numBlocks(n, bs)
	if k > nb {
		k = nb
	}
	type bscore struct {
		b int
		s float64
	}
	scores := make([]bscore, nb)
	for b := 0; b < nb; b++ {
		lo, hi := blockIndexRange(b, bs, n)
		scores[b] = bscore{b, score(lo, hi)}
	}
	sort.Slice(scores, func(i, j int) bool { return scores[i].s > scores[j].s })
	sel := make(map[int]bool, k)
	for _, s := range scores[:k] {
		sel[s.b] = true
	}
	return sel
}

// BlockTopK selects the K blocks with the largest l2 norm (§4: "Block
// Top-k").
type BlockTopK struct {
	BS int
	K  int
}

// Name implements Compressor.
func (c *BlockTopK) Name() string { return fmt.Sprintf("block-top-%d", c.K) }

// Compress implements Compressor.
func (c *BlockTopK) Compress(dst, src []float32) {
	sel := blockScoreTopK(len(src), c.BS, c.K, func(lo, hi int) float64 {
		var s float64
		for _, v := range src[lo:hi] {
			s += float64(v) * float64(v)
		}
		return s
	})
	keepBlocks(dst, src, c.BS, sel)
}

// BlockTopKRatio selects the K blocks with the largest update-ratio norm,
// where the update ratio of a parameter is gradient/parameter (§4: "Block
// Top-k Ratio"). Params supplies the current parameter values.
type BlockTopKRatio struct {
	BS     int
	K      int
	Params []float32
	// Eps regularizes the ratio for near-zero parameters.
	Eps float64
}

// Name implements Compressor.
func (c *BlockTopKRatio) Name() string { return fmt.Sprintf("block-topratio-%d", c.K) }

// Compress implements Compressor.
func (c *BlockTopKRatio) Compress(dst, src []float32) {
	eps := c.Eps
	if eps == 0 {
		eps = 1e-8
	}
	sel := blockScoreTopK(len(src), c.BS, c.K, func(lo, hi int) float64 {
		var s float64
		for i := lo; i < hi; i++ {
			p := math.Abs(float64(c.Params[i])) + eps
			r := float64(src[i]) / p
			s += r * r
		}
		return s
	})
	keepBlocks(dst, src, c.BS, sel)
}

// BlockThreshold selects blocks whose l2 norm exceeds a fixed threshold
// (§4: "Block threshold"; the paper uses 0.1664 for BERT).
type BlockThreshold struct {
	BS        int
	Threshold float64
}

// Name implements Compressor.
func (c *BlockThreshold) Name() string { return fmt.Sprintf("block-threshold-%g", c.Threshold) }

// Compress implements Compressor.
func (c *BlockThreshold) Compress(dst, src []float32) {
	sel := make(map[int]bool)
	for b := 0; b < numBlocks(len(src), c.BS); b++ {
		lo, hi := blockIndexRange(b, c.BS, len(src))
		var s float64
		for _, v := range src[lo:hi] {
			s += float64(v) * float64(v)
		}
		if math.Sqrt(s) > c.Threshold {
			sel[b] = true
		}
	}
	keepBlocks(dst, src, c.BS, sel)
}

// TopK is the element-wise Top-k baseline.
type TopK struct{ K int }

// Name implements Compressor.
func (c *TopK) Name() string { return fmt.Sprintf("top-%d", c.K) }

// Compress implements Compressor.
func (c *TopK) Compress(dst, src []float32) {
	k := c.K
	if k > len(src) {
		k = len(src)
	}
	idx := make([]int, len(src))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		return math.Abs(float64(src[idx[a]])) > math.Abs(float64(src[idx[b]]))
	})
	keep := make(map[int]bool, k)
	for _, i := range idx[:k] {
		keep[i] = true
	}
	for i := range src {
		if keep[i] {
			dst[i] = src[i]
		} else {
			dst[i] = 0
		}
	}
}

// RandomK is the element-wise Random-k baseline.
type RandomK struct {
	K   int
	Rng *rand.Rand
}

// Name implements Compressor.
func (c *RandomK) Name() string { return fmt.Sprintf("random-%d", c.K) }

// Compress implements Compressor.
func (c *RandomK) Compress(dst, src []float32) {
	k := c.K
	if k > len(src) {
		k = len(src)
	}
	keep := make(map[int]bool, k)
	for _, i := range c.Rng.Perm(len(src))[:k] {
		keep[i] = true
	}
	for i := range src {
		if keep[i] {
			dst[i] = src[i]
		} else {
			dst[i] = 0
		}
	}
}

// Threshold is the element-wise hard-threshold baseline.
type Threshold struct{ T float64 }

// Name implements Compressor.
func (c *Threshold) Name() string { return fmt.Sprintf("threshold-%g", c.T) }

// Compress implements Compressor.
func (c *Threshold) Compress(dst, src []float32) {
	for i, v := range src {
		if math.Abs(float64(v)) > c.T {
			dst[i] = v
		} else {
			dst[i] = 0
		}
	}
}

// None is the identity compressor.
type None struct{}

// Name implements Compressor.
func (None) Name() string { return "none" }

// Compress implements Compressor.
func (None) Compress(dst, src []float32) { copy(dst, src) }

// ErrorFeedback wraps a compressor with the EF-SGD memory: the residual of
// each compression is added back to the next gradient before compressing,
// so the bias of a δ-compressor vanishes over time (the convergence
// mechanism of Appendix C / [71]).
type ErrorFeedback struct {
	C      Compressor
	memory []float32
}

// NewErrorFeedback wraps c.
func NewErrorFeedback(c Compressor) *ErrorFeedback { return &ErrorFeedback{C: c} }

// Name implements Compressor.
func (e *ErrorFeedback) Name() string { return e.C.Name() + "+ef" }

// Compress applies memory correction, compresses, and stores the residual.
func (e *ErrorFeedback) Compress(dst, src []float32) {
	if e.memory == nil {
		e.memory = make([]float32, len(src))
	}
	if len(e.memory) != len(src) {
		panic("compress: error feedback length changed")
	}
	corrected := make([]float32, len(src))
	for i, v := range src {
		corrected[i] = v + e.memory[i]
	}
	e.C.Compress(dst, corrected)
	for i := range e.memory {
		e.memory[i] = corrected[i] - dst[i]
	}
}

// Delta measures the empirical compression quality delta_hat =
// 1 - ||x - C(x)||^2 / ||x||^2. For a δ-compressor, E[delta_hat] >= δ.
func Delta(c Compressor, x []float32) float64 {
	out := make([]float32, len(x))
	c.Compress(out, x)
	var errN, xN float64
	for i, v := range x {
		d := float64(v) - float64(out[i])
		errN += d * d
		xN += float64(v) * float64(v)
	}
	if xN == 0 {
		return 1
	}
	return 1 - errN/xN
}

// CompressionRatio returns the fraction of non-zero elements after
// compressing x with c.
func CompressionRatio(c Compressor, x []float32) float64 {
	out := make([]float32, len(x))
	c.Compress(out, x)
	return 1 - tensor.FromSlice(out).Sparsity()
}
