package compress

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randVec(n int, rng *rand.Rand) []float32 {
	v := make([]float32, n)
	for i := range v {
		v[i] = float32(rng.NormFloat64())
	}
	return v
}

func nnz(v []float32) int {
	n := 0
	for _, x := range v {
		if x != 0 {
			n++
		}
	}
	return n
}

func TestBlockRandomKSelectsKBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := &BlockRandomK{BS: 10, K: 3, Rng: rng}
	src := randVec(100, rng)
	dst := make([]float32, 100)
	c.Compress(dst, src)
	if got := nnz(dst); got > 30 || got < 25 {
		t.Fatalf("nnz = %d, want ~30", got)
	}
	// Selected blocks must be copied verbatim.
	for i := range dst {
		if dst[i] != 0 && dst[i] != src[i] {
			t.Fatalf("element %d altered", i)
		}
	}
}

func TestBlockTopKSelectsLargestNorm(t *testing.T) {
	src := make([]float32, 40) // 4 blocks of 10
	src[5] = 1                 // block 0 norm 1
	src[15] = 10               // block 1 norm 10
	src[25] = 5                // block 2 norm 5
	src[35] = 0.1              // block 3 norm 0.1
	dst := make([]float32, 40)
	(&BlockTopK{BS: 10, K: 2}).Compress(dst, src)
	if dst[15] != 10 || dst[25] != 5 {
		t.Fatal("top blocks not kept")
	}
	if dst[5] != 0 || dst[35] != 0 {
		t.Fatal("non-top blocks not zeroed")
	}
}

func TestBlockTopKRatio(t *testing.T) {
	src := []float32{1, 0, 0, 1} // two blocks of 2, equal gradient norms
	params := []float32{100, 1, 1, 0.01}
	dst := make([]float32, 4)
	(&BlockTopKRatio{BS: 2, K: 1, Params: params}).Compress(dst, src)
	// Block 1 has a far larger update ratio (1/0.01).
	if dst[3] != 1 || dst[0] != 0 {
		t.Fatalf("ratio selection wrong: %v", dst)
	}
}

func TestBlockThreshold(t *testing.T) {
	src := make([]float32, 20)
	src[3] = 5   // block 0 norm 5
	src[15] = .1 // block 1 norm 0.1
	dst := make([]float32, 20)
	(&BlockThreshold{BS: 10, Threshold: 1}).Compress(dst, src)
	if dst[3] != 5 || dst[15] != 0 {
		t.Fatalf("threshold selection wrong: %v", dst)
	}
}

func TestTopK(t *testing.T) {
	src := []float32{0.1, -5, 2, 0.3}
	dst := make([]float32, 4)
	(&TopK{K: 2}).Compress(dst, src)
	if dst[1] != -5 || dst[2] != 2 || dst[0] != 0 || dst[3] != 0 {
		t.Fatalf("TopK wrong: %v", dst)
	}
}

func TestRandomK(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	src := randVec(50, rng)
	dst := make([]float32, 50)
	(&RandomK{K: 10, Rng: rng}).Compress(dst, src)
	if got := nnz(dst); got > 10 {
		t.Fatalf("nnz = %d > k", got)
	}
}

func TestThresholdElementwise(t *testing.T) {
	src := []float32{0.5, -2, 0.1}
	dst := make([]float32, 3)
	(&Threshold{T: 0.4}).Compress(dst, src)
	if dst[0] != 0.5 || dst[1] != -2 || dst[2] != 0 {
		t.Fatalf("wrong: %v", dst)
	}
}

func TestNone(t *testing.T) {
	src := []float32{1, 2}
	dst := make([]float32, 2)
	(None{}).Compress(dst, src)
	if dst[0] != 1 || dst[1] != 2 {
		t.Fatal("identity failed")
	}
}

// Property (Appendix C): Block Random-k is a δ-compressor with δ = k/b in
// expectation: E||x - C(x)||² = (1 - k/b)||x||².
func TestBlockRandomKDeltaProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const bs, k, blocks = 16, 4, 32
	src := randVec(bs*blocks, rng)
	var acc float64
	const trials = 400
	c := &BlockRandomK{BS: bs, K: k, Rng: rng}
	for i := 0; i < trials; i++ {
		acc += Delta(c, src)
	}
	mean := acc / trials
	want := float64(k) / float64(blocks)
	if math.Abs(mean-want) > 0.03 {
		t.Fatalf("E[delta] = %v, want %v (δ=k/b)", mean, want)
	}
}

// Property (Appendix C): Block Top-k satisfies the deterministic bound
// ||x - C(x)||² <= (1 - k/b)||x||² for every input.
func TestBlockTopKDeltaBoundProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		bs := 1 + rng.Intn(32)
		blocks := 1 + rng.Intn(32)
		k := 1 + rng.Intn(blocks)
		src := randVec(bs*blocks, rng)
		d := Delta(&BlockTopK{BS: bs, K: k}, src)
		return d >= float64(k)/float64(blocks)-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Block Top-k dominates Block Random-k for any fixed input.
func TestBlockTopKDominatesRandomK(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	src := randVec(640, rng)
	top := Delta(&BlockTopK{BS: 16, K: 10}, src)
	var randAcc float64
	c := &BlockRandomK{BS: 16, K: 10, Rng: rng}
	for i := 0; i < 100; i++ {
		randAcc += Delta(c, src)
	}
	if top < randAcc/100-1e-9 {
		t.Fatalf("top-k delta %v below random-k mean %v", top, randAcc/100)
	}
}

func TestErrorFeedbackResidual(t *testing.T) {
	// With error feedback, what is dropped now must reappear later:
	// compressing a constant gradient twice with k=1 of 2 blocks must emit
	// the dropped block's (doubled) content in the second round.
	ef := NewErrorFeedback(&BlockTopK{BS: 2, K: 1})
	src := []float32{1, 1, 2, 2} // block 1 wins
	dst := make([]float32, 4)
	ef.Compress(dst, src)
	if dst[2] != 2 || dst[0] != 0 {
		t.Fatalf("first round wrong: %v", dst)
	}
	// Second round: memory holds {1,1,0,0}; corrected = {2,2,2,2}:
	// either block may win, but the emitted magnitude reflects the
	// accumulated residual.
	ef.Compress(dst, src)
	if nnz(dst) != 2 {
		t.Fatalf("second round nnz: %v", dst)
	}
	var total float64
	for _, v := range dst {
		total += float64(v)
	}
	if total < 3.9 {
		t.Fatalf("residual not re-emitted: %v", dst)
	}
}

// Property: error-feedback memory conserves mass — the sum of all emitted
// gradients plus the residual equals the sum of all inputs.
func TestErrorFeedbackConservationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 * (1 + rng.Intn(16))
		ef := NewErrorFeedback(&BlockTopK{BS: 8, K: 1})
		var inSum, outSum float64
		dst := make([]float32, n)
		for round := 0; round < 10; round++ {
			src := randVec(n, rng)
			for _, v := range src {
				inSum += float64(v)
			}
			ef.Compress(dst, src)
			for _, v := range dst {
				outSum += float64(v)
			}
		}
		var mem float64
		for _, v := range ef.memory {
			mem += float64(v)
		}
		return math.Abs(inSum-(outSum+mem)) < 1e-2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestCompressionRatio(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	src := randVec(1000, rng)
	r := CompressionRatio(&BlockTopK{BS: 10, K: 10}, src)
	if math.Abs(r-0.1) > 1e-9 {
		t.Fatalf("ratio = %v, want 0.1", r)
	}
}

func TestDeltaEdgeCases(t *testing.T) {
	if Delta(None{}, []float32{0, 0}) != 1 {
		t.Fatal("zero vector delta should be 1")
	}
	if d := Delta(None{}, []float32{1, 2}); math.Abs(d-1) > 1e-12 {
		t.Fatalf("identity delta = %v", d)
	}
}

func TestKLargerThanBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	src := randVec(20, rng)
	dst := make([]float32, 20)
	(&BlockTopK{BS: 10, K: 100}).Compress(dst, src)
	if nnz(dst) != nnz(src) {
		t.Fatal("k > b should keep everything")
	}
	(&BlockRandomK{BS: 10, K: 100, Rng: rng}).Compress(dst, src)
	if nnz(dst) != nnz(src) {
		t.Fatal("random k > b should keep everything")
	}
	(&TopK{K: 100}).Compress(dst, src)
	if nnz(dst) != nnz(src) {
		t.Fatal("element top-k > n should keep everything")
	}
}

func BenchmarkBlockTopK(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	src := randVec(1<<20, rng)
	dst := make([]float32, len(src))
	c := &BlockTopK{BS: 256, K: 40}
	b.SetBytes(int64(4 * len(src)))
	for i := 0; i < b.N; i++ {
		c.Compress(dst, src)
	}
}

func BenchmarkBlockThreshold(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	src := randVec(1<<20, rng)
	dst := make([]float32, len(src))
	c := &BlockThreshold{BS: 256, Threshold: 10}
	b.SetBytes(int64(4 * len(src)))
	for i := 0; i < b.N; i++ {
		c.Compress(dst, src)
	}
}

func BenchmarkErrorFeedback(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	src := randVec(1<<18, rng)
	dst := make([]float32, len(src))
	ef := NewErrorFeedback(&BlockTopK{BS: 256, K: 10})
	b.SetBytes(int64(4 * len(src)))
	for i := 0; i < b.N; i++ {
		ef.Compress(dst, src)
	}
}

func TestCompressorNames(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := map[Compressor]string{
		&BlockRandomK{K: 3, Rng: rng}:      "block-random-3",
		&BlockTopK{K: 5}:                   "block-top-5",
		&BlockTopKRatio{K: 2}:              "block-topratio-2",
		&BlockThreshold{Threshold: 0.5}:    "block-threshold-0.5",
		&TopK{K: 9}:                        "top-9",
		&RandomK{K: 4, Rng: rng}:           "random-4",
		&Threshold{T: 1.5}:                 "threshold-1.5",
		None{}:                             "none",
		NewErrorFeedback(&BlockTopK{K: 1}): "block-top-1+ef",
	}
	for c, want := range cases {
		if got := c.Name(); got != want {
			t.Errorf("Name = %q, want %q", got, want)
		}
	}
}
