// Command omnibench regenerates the paper's microbenchmark tables and
// figures (§6.1, §6.3, §6.4, Appendices B.1 and D) on the virtual-time
// simulator and the real bitmap implementation.
//
// Usage:
//
//	omnibench -fig 4          # one figure (4,5,6,7,8,13,15,16,17,18,20,21)
//	omnibench -table 1        # one table (1 or 2)
//	omnibench -model          # the §3.4 analytic speedup table
//	omnibench -all            # everything
//	omnibench -ablation       # design-choice sweeps
//	omnibench -live           # wall-clock run of the real implementations
//	omnibench -fig 4 -csv     # CSV instead of aligned text
//	omnibench -scale 8        # higher fidelity (slower); default 16
package main

import (
	"flag"
	"fmt"
	"os"

	"omnireduce/internal/exp"
	"omnireduce/internal/metrics"
)

func main() {
	fig := flag.Int("fig", 0, "figure number to regenerate")
	table := flag.Int("table", 0, "table number to regenerate")
	model := flag.Bool("model", false, "print the §3.4 analytic model table")
	ablation := flag.Bool("ablation", false, "run the design-choice ablations (streams, fusion width, shards, colocation)")
	live := flag.Bool("live", false, "wall-clock comparison of the real implementations (in-process fabric)")
	all := flag.Bool("all", false, "regenerate every table and figure")
	csv := flag.Bool("csv", false, "emit CSV instead of text tables")
	scale := flag.Int("scale", 16, "traffic scale divisor (lower = higher fidelity)")
	seed := flag.Int64("seed", 42, "random seed")
	flag.Parse()

	o := exp.Options{Scale: *scale, Seed: *seed}
	figs := map[int]func(exp.Options) *metrics.Table{
		4: exp.Fig4, 5: exp.Fig5, 6: exp.Fig6, 7: exp.Fig7, 8: exp.Fig8,
		13: exp.Fig13, 15: exp.Fig15, 16: exp.Fig16, 17: exp.Fig17,
		18: exp.Fig18, 20: exp.Fig20, 21: exp.Fig21,
	}
	tables := map[int]func(exp.Options) *metrics.Table{
		1: exp.Table1, 2: exp.Table2,
	}

	emit := func(t *metrics.Table) {
		if *csv {
			t.RenderCSV(os.Stdout)
		} else {
			t.Render(os.Stdout)
		}
		fmt.Println()
	}
	ablations := func() {
		emit(exp.AblationStreams(o))
		emit(exp.AblationFusionWidth(o))
		emit(exp.AblationAggregators(o))
		emit(exp.AblationColocation(o))
	}

	ran := false
	if *all {
		for _, id := range []int{1, 2} {
			emit(tables[id](o))
		}
		for _, id := range []int{4, 5, 6, 7, 8, 13, 15, 16, 17, 18, 20, 21} {
			emit(figs[id](o))
		}
		emit(exp.PerfModelTable())
		ablations()
		return
	}
	if *fig != 0 {
		f, ok := figs[*fig]
		if !ok {
			fmt.Fprintf(os.Stderr, "omnibench: no such figure %d (training figures live in trainsim)\n", *fig)
			os.Exit(2)
		}
		emit(f(o))
		ran = true
	}
	if *table != 0 {
		f, ok := tables[*table]
		if !ok {
			fmt.Fprintf(os.Stderr, "omnibench: no such table %d\n", *table)
			os.Exit(2)
		}
		emit(f(o))
		ran = true
	}
	if *model {
		emit(exp.PerfModelTable())
		ran = true
	}
	if *ablation {
		ablations()
		ran = true
	}
	if *live {
		emit(exp.LiveComparison(o))
		ran = true
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}
