// Command tracetool merges flight-recorder dumps from the nodes of one
// run into a clock-aligned cross-node timeline and renders it: one Gantt
// row per (tensor, slot) lane, slot occupancy over time, the look-ahead
// skip ratio and its dense-baseline goodput factor, and retransmit-repair
// latency quantiles — the Fig 6-style readout of the slot-clocked
// pipeline.
//
// Usage:
//
//	go run ./cmd/tracetool [flags] dump.json [dump.json...]
//
// Each argument is one obs.FlightDump document (a worker, an aggregator,
// or a whole in-process cluster). With -check, tracetool exits nonzero
// unless the merged timeline is healthy: occupancy positive, no round
// left open, and — when the dumps carry an expected_skip_ratio tag — the
// measured skip ratio within -skip-tol of it. The timeline CI tier runs
// the chaos example with dumps enabled and gates on this.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"

	"omnireduce/internal/obs"
	"omnireduce/internal/obs/timeline"
	"omnireduce/internal/protocol"
)

func fail(format string, a ...any) {
	fmt.Fprintf(os.Stderr, "tracetool: "+format+"\n", a...)
	os.Exit(1)
}

func main() {
	out := flag.String("o", "", "write the JSON report to this path")
	width := flag.Int("width", 64, "Gantt row width in characters")
	check := flag.Bool("check", false, "exit nonzero unless the timeline is healthy")
	skipTol := flag.Float64("skip-tol", 0.01, "max |measured-expected| skip ratio in -check mode")
	ns := flag.Int("ns", -1, "only this tensor-ID namespace (one job of a multi-tenant aggregator; -1 = all)")
	flag.Parse()
	if flag.NArg() == 0 {
		fail("no dump files given (usage: tracetool [flags] dump.json...)")
	}

	var dumps []*obs.FlightDump
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			fail("%v", err)
		}
		d, err := obs.ReadFlightDump(f)
		f.Close()
		if err != nil {
			fail("%s: %v", path, err)
		}
		if *ns >= 0 {
			// Tensor IDs embed their job's namespace, so one job of a
			// multi-tenant run is a pure record filter.
			kept := d.Records[:0]
			for _, r := range d.Records {
				if int(protocol.TidNamespace(r.Tid)) == *ns {
					kept = append(kept, r)
				}
			}
			d.Records = kept
		}
		dumps = append(dumps, d)
	}

	tl, err := timeline.Merge(dumps...)
	if err != nil {
		fail("%v", err)
	}
	tl.RenderText(os.Stdout, *width)

	if *out != "" {
		rep := tl.Report(*width)
		enc, err := json.MarshalIndent(&rep, "", "  ")
		if err != nil {
			fail("%v", err)
		}
		if err := os.WriteFile(*out, append(enc, '\n'), 0o644); err != nil {
			fail("%v", err)
		}
		fmt.Fprintf(os.Stderr, "tracetool: wrote %s\n", *out)
	}

	if !*check {
		return
	}
	if occ := tl.Occupancy(); occ <= 0 {
		fail("check: occupancy %.4f is not positive — no lane ever had a round in flight", occ)
	}
	if n := tl.OpenRounds(); n > 0 {
		fail("check: %d rounds issued but never completed", n)
	}
	if want, ok := tl.Tags["expected_skip_ratio"]; ok {
		exp, err := strconv.ParseFloat(want, 64)
		if err != nil {
			fail("check: bad expected_skip_ratio tag %q: %v", want, err)
		}
		got := tl.SkipRatio()
		if diff := got - exp; diff > *skipTol || diff < -*skipTol {
			fail("check: skip ratio %.4f deviates from expected %.4f by %.4f (tolerance %.4f)",
				got, exp, got-exp, *skipTol)
		}
		fmt.Printf("tracetool: check passed: occupancy %.1f%%, skip ratio %.4f vs expected %.4f (tolerance %.4f), all rounds closed\n",
			tl.Occupancy()*100, got, exp, *skipTol)
		return
	}
	fmt.Printf("tracetool: check passed: occupancy %.1f%%, all rounds closed (no expected_skip_ratio tag)\n",
		tl.Occupancy()*100)
}
