// Command worker runs an OmniReduce worker for cross-process or
// cross-host benchmarking: it performs a number of AllReduce operations
// over synthetic tensors of a chosen sparsity and reports throughput,
// mirroring the paper's microbenchmark methodology (§6.1).
//
// Example (2 workers, 1 aggregator on the same host):
//
//	aggregator -id 2 -workers 2 -nodes 0=:7000,1=:7001,2=:7002 &
//	worker -id 0 -workers 2 -nodes 0=:7000,1=:7001,2=:7002 -size 25000000 -sparsity 0.99 &
//	worker -id 1 -workers 2 -nodes 0=:7000,1=:7001,2=:7002 -size 25000000 -sparsity 0.99
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"time"

	"omnireduce"
	"omnireduce/internal/cli"
	"omnireduce/internal/metrics"
	"omnireduce/internal/obs"
)

func main() {
	id := flag.Int("id", -1, "this worker's node id (0..workers-1)")
	workers := flag.Int("workers", 0, "number of workers in the job")
	aggregators := flag.Int("aggregators", 1, "number of aggregator shards")
	nodes := flag.String("nodes", "", "comma-separated id=host:port address book")
	transportName := flag.String("transport", "tcp", "tcp or udp")
	size := flag.Int("size", 25_000_000, "tensor elements (float32)")
	sparsityF := flag.Float64("sparsity", 0.9, "fraction of zero elements")
	iters := flag.Int("iters", 20, "measured iterations")
	warmup := flag.Int("warmup", 3, "warm-up iterations")
	blockSize := flag.Int("block-size", 256, "elements per block")
	fusion := flag.Int("fusion", 8, "blocks fused per packet")
	streams := flag.Int("streams", 4, "parallel aggregation streams")
	seed := flag.Int64("seed", 1, "tensor seed (same on all workers for overlap control)")
	tenantName := flag.String("tenant", "", "tenant name for a multi-tenant aggregator (empty = legacy default job)")
	jobName := flag.String("job", "", "job name within -tenant (required when -tenant is set)")
	viewEpoch := flag.Uint("view-epoch", 0, "starting membership view epoch (> 0 binds connections to the epoch; must match the aggregators)")
	obsAddr := flag.String("obs", "", "serve /debug/obs, /debug/vars, and /debug/pprof on this address (empty = off)")
	flag.Parse()

	if *obsAddr != "" {
		srv := obs.ServeDebug(*obsAddr, obs.Default)
		defer srv.Close()
		log.Printf("worker: observability endpoint on http://%s/debug/obs", *obsAddr)
	}

	addrs, err := cli.ParseNodes(*nodes)
	if err != nil {
		log.Fatalf("worker: %v", err)
	}
	if *id < 0 || *id >= *workers {
		log.Fatalf("worker: -id must be in [0, workers)")
	}
	opts := omnireduce.Options{
		Workers:     *workers,
		Aggregators: *aggregators,
		BlockSize:   *blockSize,
		FusionWidth: *fusion,
		Streams:     *streams,
		ViewEpoch:   uint32(*viewEpoch),
	}
	var w *omnireduce.Worker
	switch *transportName {
	case "tcp":
		w, err = omnireduce.NewTCPWorker(*id, addrs, opts)
	case "udp":
		w, err = omnireduce.NewUDPWorker(*id, addrs, opts)
	default:
		log.Fatalf("worker: unknown transport %q", *transportName)
	}
	if err != nil {
		log.Fatalf("worker: %v", err)
	}
	defer w.Close()

	// With -tenant/-job the collectives run inside that job's tensor-ID
	// namespace, so many such workers can share one aggregator fleet.
	// allReduce dispatches to the job session when one is open.
	allReduce := w.AllReduce
	if *tenantName != "" || *jobName != "" {
		if *tenantName == "" || *jobName == "" {
			log.Fatalf("worker: -tenant and -job must be set together")
		}
		job, err := w.OpenJob(*tenantName, *jobName)
		if err != nil {
			log.Fatalf("worker: open job %s/%s: %v", *tenantName, *jobName, err)
		}
		defer job.Close()
		log.Printf("worker %d: joined job %s/%s (namespace %d)", *id, *tenantName, *jobName, job.Namespace())
		allReduce = job.AllReduce
	}

	rng := rand.New(rand.NewSource(*seed + int64(*id)*7919))
	data := make([]float32, *size)
	regen := func() {
		for i := range data {
			if rng.Float64() >= *sparsityF {
				data[i] = float32(rng.NormFloat64())
			} else {
				data[i] = 0
			}
		}
	}

	var times []float64
	for it := 0; it < *warmup+*iters; it++ {
		regen()
		start := time.Now()
		if err := allReduce(data); err != nil {
			log.Fatalf("worker: AllReduce: %v", err)
		}
		if it >= *warmup {
			times = append(times, time.Since(start).Seconds())
		}
	}
	s := metrics.Summarize(times)
	bytes := float64(*size) * 4
	fmt.Printf("worker %d: %d iters, tensor %s, sparsity %.0f%%\n",
		*id, *iters, metrics.FormatBytes(bytes), *sparsityF*100)
	fmt.Printf("  mean %s  p50 %s  p99 %s  goodput %.2f Gbps\n",
		metrics.FormatDuration(s.Mean), metrics.FormatDuration(s.P50),
		metrics.FormatDuration(s.P99), bytes*8/s.Mean/1e9)
	st := w.Stats()
	fmt.Printf("  packets %d  data-blocks %d  retransmits %d  acks %d\n",
		st.PacketsSent, st.BlocksSent, st.Retransmits, st.AcksSent)
	ps := w.PumpStats()
	fmt.Printf("  pump: delivered %d  stale %d  overflow %d  bad %d\n",
		ps.Delivered, ps.StaleDrops, ps.OverflowDrops, ps.BadPackets)
	for _, tbl := range obs.Default.Tables("obs ") {
		tbl.Render(os.Stdout)
	}
	obs.PoolTable().Render(os.Stdout)
}
