package main

import (
	"strings"
	"testing"
)

func TestParseLine(t *testing.T) {
	r, ok := parse("BenchmarkPacketEncode-8  500000  2101 ns/op  1948.87 MB/s  16 B/op  2 allocs/op")
	if !ok {
		t.Fatal("line not parsed")
	}
	if r.Name != "BenchmarkPacketEncode" || r.Iters != 500000 || r.NsPerOp != 2101 ||
		r.MBPerS != 1948.87 || r.BPerOp != 16 || r.AllocsOp != 2 {
		t.Fatalf("parsed %+v", r)
	}
	if _, ok := parse("PASS"); ok {
		t.Fatal("non-benchmark line parsed")
	}
	if _, ok := parse("BenchmarkBroken-8  100  garbage"); ok {
		t.Fatal("line without ns/op parsed")
	}
}

func TestDedupeKeepsBestPerMetric(t *testing.T) {
	in := []Result{
		{Name: "BenchmarkA", NsPerOp: 300, AllocsOp: 10, MBPerS: 90, BPerOp: 64, Iters: 3},
		{Name: "BenchmarkB", NsPerOp: 50},
		{Name: "BenchmarkA", NsPerOp: 100, AllocsOp: 30, MBPerS: 120, BPerOp: 96, Iters: 9}, // fastest
		{Name: "BenchmarkA", NsPerOp: 200, AllocsOp: 20, MBPerS: 100, BPerOp: 80, Iters: 5},
	}
	got := dedupe(in)
	if len(got) != 2 {
		t.Fatalf("dedupe kept %d entries, want 2", len(got))
	}
	// First-appearance order is preserved; each metric keeps its best:
	// min ns/op (with its iters), max MB/s, min B/op and allocs/op.
	a := got[0]
	if a.Name != "BenchmarkA" || a.NsPerOp != 100 || a.Iters != 9 ||
		a.MBPerS != 120 || a.BPerOp != 64 || a.AllocsOp != 10 {
		t.Fatalf("A = %+v", a)
	}
	if got[1].Name != "BenchmarkB" || got[1].NsPerOp != 50 {
		t.Fatalf("B = %+v", got[1])
	}
}

func TestTracerBudgetUsesRawRuns(t *testing.T) {
	// Three off/flight pairs; the median ratio (2%) is under budget even
	// though one outlier pair (20%) would trip it alone.
	runs := []Result{
		{Name: tracerOffName, NsPerOp: 100}, {Name: tracerFlightName, NsPerOp: 102},
		{Name: tracerOffName, NsPerOp: 100}, {Name: tracerFlightName, NsPerOp: 120},
		{Name: tracerOffName, NsPerOp: 100}, {Name: tracerFlightName, NsPerOp: 101},
	}
	pct, found, err := checkTracerBudget(runs, 5)
	if !found || err != nil {
		t.Fatalf("found=%v err=%v", found, err)
	}
	if pct != 2 {
		t.Fatalf("median overhead = %v, want 2", pct)
	}
	if _, _, err := checkTracerBudget(runs, 1); err == nil {
		t.Fatal("budget 1%% should fail on 2%% median")
	}
}

func TestGateAllocRegression(t *testing.T) {
	old := []Result{{Name: "BenchmarkAllReduceLive/workers=8", NsPerOp: 100, AllocsOp: 1000, MBPerS: 150}}
	ok := []Result{{Name: "BenchmarkAllReduceLive/workers=8", NsPerOp: 100, AllocsOp: 1090, MBPerS: 150}}
	if errs := checkGate(ok, old, []string{"BenchmarkAllReduceLive"}, 10, 35); len(errs) != 0 {
		t.Fatalf("within-limit allocs flagged: %v", errs)
	}
	bad := []Result{{Name: "BenchmarkAllReduceLive/workers=8", NsPerOp: 100, AllocsOp: 1200, MBPerS: 150}}
	errs := checkGate(bad, old, []string{"BenchmarkAllReduceLive"}, 10, 35)
	if len(errs) != 1 || !strings.Contains(errs[0].Error(), "allocs/op regressed") {
		t.Fatalf("alloc regression not flagged: %v", errs)
	}
}

func TestGateThroughputRegression(t *testing.T) {
	// MB/s uses its own (wider) tolerance: -15% passes at mbsPct=35,
	// -40% fails.
	old := []Result{{Name: "BenchmarkPacketEncode", NsPerOp: 100, MBPerS: 1000}}
	ok := []Result{{Name: "BenchmarkPacketEncode", NsPerOp: 100, MBPerS: 850}}
	if errs := checkGate(ok, old, []string{"BenchmarkPacketEncode"}, 10, 35); len(errs) != 0 {
		t.Fatalf("within-tolerance throughput flagged: %v", errs)
	}
	bad := []Result{{Name: "BenchmarkPacketEncode", NsPerOp: 100, MBPerS: 600}}
	errs := checkGate(bad, old, []string{"BenchmarkPacketEncode"}, 10, 35)
	if len(errs) != 1 || !strings.Contains(errs[0].Error(), "MB/s regressed") {
		t.Fatalf("throughput regression not flagged: %v", errs)
	}
	// The alloc tolerance still applies independently at 10%.
	bad = []Result{{Name: "BenchmarkPacketEncode", NsPerOp: 100, MBPerS: 1000, AllocsOp: 100}}
	old[0].AllocsOp = 50
	if errs := checkGate(bad, old, []string{"BenchmarkPacketEncode"}, 10, 35); len(errs) != 1 {
		t.Fatalf("alloc regression not flagged alongside healthy MB/s: %v", errs)
	}
}

func TestGateScope(t *testing.T) {
	old := []Result{
		{Name: "BenchmarkUnpinned", AllocsOp: 10, NsPerOp: 1},
		{Name: "BenchmarkPinned/old-only", AllocsOp: 10, NsPerOp: 1},
	}
	cur := []Result{
		{Name: "BenchmarkUnpinned", AllocsOp: 10000, NsPerOp: 1}, // not gated
		{Name: "BenchmarkPinned/new-only", AllocsOp: 10000, NsPerOp: 1},
	}
	if errs := checkGate(cur, old, []string{"BenchmarkPinned"}, 10, 35); len(errs) != 0 {
		t.Fatalf("gate flagged out-of-scope benchmarks: %v", errs)
	}
	// Small benchmarks get absolute slack: 2 -> 9 allocs is within 2*1.1+8.
	old = []Result{{Name: "BenchmarkPinnedSmall", AllocsOp: 2, NsPerOp: 1}}
	cur = []Result{{Name: "BenchmarkPinnedSmall", AllocsOp: 9, NsPerOp: 1}}
	if errs := checkGate(cur, old, []string{"BenchmarkPinnedSmall"}, 10, 35); len(errs) != 0 {
		t.Fatalf("slack not applied: %v", errs)
	}
	cur = []Result{{Name: "BenchmarkPinnedSmall", AllocsOp: 11, NsPerOp: 1}}
	if errs := checkGate(cur, old, []string{"BenchmarkPinnedSmall"}, 10, 35); len(errs) != 1 {
		t.Fatalf("past-slack regression not flagged: %v", errs)
	}
}
