// Command benchjson converts `go test -bench -benchmem` output on stdin
// into a JSON performance record, preserving a baseline across reruns so
// the datapath's perf trajectory is tracked from PR to PR.
//
// Usage:
//
//	go test -bench ... -benchmem ./... | go run ./cmd/benchjson -o BENCH_datapath.json
//
// The output file holds two sections: "baseline" (the first recording
// ever written to that path, kept verbatim on every rerun) and "current"
// (this run). Comparing the two shows the cumulative effect of perf work
// since the baseline was captured.
//
// Repeated runs of the same benchmark (from -count=N or repeated
// invocations) are deduplicated before recording: each metric keeps its
// best observed value (lowest ns/op and allocs/op, highest MB/s), so
// noisy outliers on a shared box do not pollute the trajectory.
//
// When the input contains the BenchmarkTracerOverhead off/flight pair,
// benchjson also enforces the flight-recorder enabled-path budget: the
// traced run may cost at most -tracer-budget percent (default 5) more
// than the untraced run, or the command exits nonzero and fails the
// bench tier. The budget is computed on the raw (pre-dedup) run list so
// the off/flight pairing by input order is preserved.
//
// With -gate "prefix1,prefix2", benchjson additionally acts as a
// regression gate: each new current entry whose name starts with a
// listed prefix is compared against the same-named entry in the
// previous recording's "current" section, and the command exits nonzero
// if allocs/op grew by more than -gate-pct percent (default 10) or MB/s
// shrank by more than -gate-mbs-pct percent (default 35; throughput is
// far noisier than allocation counts on a shared box). The file is
// still written first, so the offending numbers are on disk for
// inspection.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark measurement.
type Result struct {
	Name     string  `json:"name"`
	Iters    int64   `json:"iters"`
	NsPerOp  float64 `json:"ns_op"`
	MBPerS   float64 `json:"mb_s,omitempty"`
	BPerOp   int64   `json:"b_op"`
	AllocsOp int64   `json:"allocs_op"`
}

// File is the on-disk layout.
type File struct {
	Note     string   `json:"note"`
	Baseline []Result `json:"baseline"`
	Current  []Result `json:"current"`
}

// benchLine matches one `go test -bench` result row, e.g.
//
//	BenchmarkPacketEncode-8  500000  2101 ns/op  1948.87 MB/s  0 B/op  0 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.*)$`)

func parse(line string) (Result, bool) {
	m := benchLine.FindStringSubmatch(line)
	if m == nil {
		return Result{}, false
	}
	r := Result{Name: m[1]}
	r.Iters, _ = strconv.ParseInt(m[2], 10, 64)
	fields := strings.Fields(m[3])
	for i := 0; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp = v
		case "MB/s":
			r.MBPerS = v
		case "B/op":
			r.BPerOp = int64(v)
		case "allocs/op":
			r.AllocsOp = int64(v)
		}
	}
	return r, r.NsPerOp > 0
}

// dedupe collapses repeated runs of the same benchmark into one entry,
// preserving first-appearance order and keeping the best observed value
// per metric: lowest ns/op (and its iteration count), highest MB/s,
// lowest B/op and allocs/op. Best-of-N per metric is the standard
// answer to measurement noise — the fastest run is the one least
// perturbed by the machine, and the leanest run is the one the GC
// didn't interrupt (a pool cleared mid-run shows up as a burst of
// re-warming allocations that says nothing about the code).
func dedupe(results []Result) []Result {
	idx := make(map[string]int, len(results))
	out := results[:0:0]
	for _, r := range results {
		i, ok := idx[r.Name]
		if !ok {
			idx[r.Name] = len(out)
			out = append(out, r)
			continue
		}
		b := &out[i]
		if r.NsPerOp < b.NsPerOp {
			b.NsPerOp, b.Iters = r.NsPerOp, r.Iters
		}
		if r.MBPerS > b.MBPerS {
			b.MBPerS = r.MBPerS
		}
		if r.BPerOp < b.BPerOp {
			b.BPerOp = r.BPerOp
		}
		if r.AllocsOp < b.AllocsOp {
			b.AllocsOp = r.AllocsOp
		}
	}
	return out
}

// The tracer-overhead benchmark pair: the same AllReduce workload with no
// tracer vs with a live flight recorder. Budget enforcement keys on these
// exact names (bench_test.go's BenchmarkTracerOverhead sub-benchmarks).
const (
	tracerOffName    = "BenchmarkTracerOverhead/off"
	tracerFlightName = "BenchmarkTracerOverhead/flight"
)

// checkTracerBudget enforces the flight-recorder enabled-path budget when
// both halves of the pair are present. The bench tier runs the pair
// several times in separate, temporally adjacent invocations; each i-th
// off run is paired with the i-th flight run (input order) and the
// overhead is the median of the per-pair ratios. Pairing before reducing
// cancels machine-speed drift across the run — a shared box slowing down
// mid-sweep inflates both halves of a pair equally, where comparing
// block-of-off against block-of-flight minima would read the drift as
// tracer cost. Returns (overheadPct, found, err).
func checkTracerBudget(results []Result, budgetPct float64) (float64, bool, error) {
	var offs, flights []float64
	for _, r := range results {
		switch r.Name {
		case tracerOffName:
			offs = append(offs, r.NsPerOp)
		case tracerFlightName:
			flights = append(flights, r.NsPerOp)
		}
	}
	n := len(offs)
	if len(flights) < n {
		n = len(flights)
	}
	if n == 0 {
		return 0, false, nil
	}
	pcts := make([]float64, n)
	for i := 0; i < n; i++ {
		pcts[i] = 100 * (flights[i] - offs[i]) / offs[i]
	}
	sort.Float64s(pcts)
	pct := pcts[n/2]
	if n%2 == 0 {
		pct = (pcts[n/2-1] + pcts[n/2]) / 2
	}
	if pct > budgetPct {
		return pct, true, fmt.Errorf("flight-recorder overhead %.1f%% exceeds the %.0f%% budget (median of %d paired runs: %v)",
			pct, budgetPct, n, pcts)
	}
	return pct, true, nil
}

// allocGateSlack is the absolute allocs/op slack added on top of the
// percentage gate. Tiny benchmarks sit at a handful of allocations where
// a single extra object is a >10% "regression"; the slack keeps the gate
// meaningful for the big datapath numbers without tripping on noise in
// the small ones.
const allocGateSlack = 8

// checkGate compares the new recording against the previous one for
// every benchmark whose name starts with one of the pinned prefixes.
// A benchmark regresses when allocs/op grows past old*(1+pct/100)+slack
// or MB/s (when both runs report it) falls below old*(1-mbsPct/100).
// The two tolerances differ because the metrics' noise differs:
// allocation counts are near-deterministic (best-of-N filters the GC's
// pool clears), while wall-clock throughput on a shared box swings with
// neighbor load in phases longer than a benchmark invocation — the MB/s
// gate is a backstop against structural collapses, not a 10% ratchet.
// Benchmarks present on only one side are skipped: the gate guards
// known quantities, it does not enforce suite membership.
func checkGate(newCur, oldCur []Result, prefixes []string, pct, mbsPct float64) []error {
	old := make(map[string]Result, len(oldCur))
	for _, r := range oldCur {
		old[r.Name] = r
	}
	var errs []error
	for _, r := range newCur {
		pinned := false
		for _, p := range prefixes {
			if p != "" && strings.HasPrefix(r.Name, p) {
				pinned = true
				break
			}
		}
		if !pinned {
			continue
		}
		o, ok := old[r.Name]
		if !ok {
			continue
		}
		if limit := int64(float64(o.AllocsOp)*(1+pct/100)) + allocGateSlack; r.AllocsOp > limit {
			errs = append(errs, fmt.Errorf("%s: allocs/op regressed %d -> %d (limit %d, +%.0f%%+%d)",
				r.Name, o.AllocsOp, r.AllocsOp, limit, pct, int64(allocGateSlack)))
		}
		if o.MBPerS > 0 && r.MBPerS > 0 {
			if floor := o.MBPerS * (1 - mbsPct/100); r.MBPerS < floor {
				errs = append(errs, fmt.Errorf("%s: MB/s regressed %.2f -> %.2f (floor %.2f, -%.0f%%)",
					r.Name, o.MBPerS, r.MBPerS, floor, mbsPct))
			}
		}
	}
	return errs
}

func main() {
	out := flag.String("o", "BENCH_datapath.json", "output JSON path")
	budget := flag.Float64("tracer-budget", 5, "max flight-recorder overhead %% over the untraced pair (<0 disables)")
	gate := flag.String("gate", "", "comma-separated benchmark name prefixes to gate against the previous recording")
	gatePct := flag.Float64("gate-pct", 10, "max %% regression in allocs/op for gated benchmarks")
	gateMBsPct := flag.Float64("gate-mbs-pct", 35, "max %% regression in MB/s for gated benchmarks (throughput is noisier than allocation counts)")
	flag.Parse()

	var runs []Result
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass the raw output through for the console
		if r, ok := parse(line); ok {
			runs = append(runs, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: read stdin: %v\n", err)
		os.Exit(1)
	}
	if len(runs) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found on stdin")
		os.Exit(1)
	}
	current := dedupe(runs)

	f := File{
		Note:     "datapath wall-clock benchmarks; baseline is the first recording at this path and is preserved across reruns; repeated runs record the best observed value per metric",
		Baseline: current,
		Current:  current,
	}
	var prevCur []Result
	if prev, err := os.ReadFile(*out); err == nil {
		var old File
		if json.Unmarshal(prev, &old) == nil && len(old.Baseline) > 0 {
			f.Baseline = old.Baseline
			prevCur = old.Current
		}
	}
	enc, err := json.MarshalIndent(&f, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(enc, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks (%d runs) to %s\n", len(current), len(runs), *out)

	fail := false
	if *budget >= 0 {
		// The budget pairs the i-th off run with the i-th flight run, so it
		// consumes the raw run list, not the deduplicated recording.
		pct, found, err := checkTracerBudget(runs, *budget)
		switch {
		case err != nil:
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			fail = true
		case found:
			fmt.Fprintf(os.Stderr, "benchjson: flight-recorder overhead %+.1f%% (budget %.0f%%)\n", pct, *budget)
		}
	}
	if *gate != "" && len(prevCur) > 0 {
		prefixes := strings.Split(*gate, ",")
		if errs := checkGate(current, prevCur, prefixes, *gatePct, *gateMBsPct); len(errs) > 0 {
			for _, e := range errs {
				fmt.Fprintf(os.Stderr, "benchjson: gate: %v\n", e)
			}
			fail = true
		} else {
			fmt.Fprintf(os.Stderr, "benchjson: gate: %d pinned benchmarks within limits (allocs %.0f%%, MB/s %.0f%%) of previous recording\n",
				countPinned(current, prefixes), *gatePct, *gateMBsPct)
		}
	}
	if fail {
		os.Exit(1)
	}
}

func countPinned(results []Result, prefixes []string) int {
	n := 0
	for _, r := range results {
		for _, p := range prefixes {
			if p != "" && strings.HasPrefix(r.Name, p) {
				n++
				break
			}
		}
	}
	return n
}
