// Command benchjson converts `go test -bench -benchmem` output on stdin
// into a JSON performance record, preserving a baseline across reruns so
// the datapath's perf trajectory is tracked from PR to PR.
//
// Usage:
//
//	go test -bench ... -benchmem ./... | go run ./cmd/benchjson -o BENCH_datapath.json
//
// The output file holds two sections: "baseline" (the first recording
// ever written to that path, kept verbatim on every rerun) and "current"
// (this run). Comparing the two shows the cumulative effect of perf work
// since the baseline was captured.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Result is one benchmark measurement.
type Result struct {
	Name     string  `json:"name"`
	Iters    int64   `json:"iters"`
	NsPerOp  float64 `json:"ns_op"`
	MBPerS   float64 `json:"mb_s,omitempty"`
	BPerOp   int64   `json:"b_op"`
	AllocsOp int64   `json:"allocs_op"`
}

// File is the on-disk layout.
type File struct {
	Note     string   `json:"note"`
	Baseline []Result `json:"baseline"`
	Current  []Result `json:"current"`
}

// benchLine matches one `go test -bench` result row, e.g.
//
//	BenchmarkPacketEncode-8  500000  2101 ns/op  1948.87 MB/s  0 B/op  0 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.*)$`)

func parse(line string) (Result, bool) {
	m := benchLine.FindStringSubmatch(line)
	if m == nil {
		return Result{}, false
	}
	r := Result{Name: m[1]}
	r.Iters, _ = strconv.ParseInt(m[2], 10, 64)
	fields := strings.Fields(m[3])
	for i := 0; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp = v
		case "MB/s":
			r.MBPerS = v
		case "B/op":
			r.BPerOp = int64(v)
		case "allocs/op":
			r.AllocsOp = int64(v)
		}
	}
	return r, r.NsPerOp > 0
}

func main() {
	out := flag.String("o", "BENCH_datapath.json", "output JSON path")
	flag.Parse()

	var current []Result
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass the raw output through for the console
		if r, ok := parse(line); ok {
			current = append(current, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: read stdin: %v\n", err)
		os.Exit(1)
	}
	if len(current) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found on stdin")
		os.Exit(1)
	}

	f := File{
		Note:     "datapath wall-clock benchmarks; baseline is the first recording at this path and is preserved across reruns",
		Baseline: current,
		Current:  current,
	}
	if prev, err := os.ReadFile(*out); err == nil {
		var old File
		if json.Unmarshal(prev, &old) == nil && len(old.Baseline) > 0 {
			f.Baseline = old.Baseline
		}
	}
	enc, err := json.MarshalIndent(&f, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(enc, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(current), *out)
}
