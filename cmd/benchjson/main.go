// Command benchjson converts `go test -bench -benchmem` output on stdin
// into a JSON performance record, preserving a baseline across reruns so
// the datapath's perf trajectory is tracked from PR to PR.
//
// Usage:
//
//	go test -bench ... -benchmem ./... | go run ./cmd/benchjson -o BENCH_datapath.json
//
// The output file holds two sections: "baseline" (the first recording
// ever written to that path, kept verbatim on every rerun) and "current"
// (this run). Comparing the two shows the cumulative effect of perf work
// since the baseline was captured.
//
// When the input contains the BenchmarkTracerOverhead off/flight pair,
// benchjson also enforces the flight-recorder enabled-path budget: the
// traced run may cost at most -tracer-budget percent (default 5) more
// than the untraced run, or the command exits nonzero and fails the
// bench tier.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark measurement.
type Result struct {
	Name     string  `json:"name"`
	Iters    int64   `json:"iters"`
	NsPerOp  float64 `json:"ns_op"`
	MBPerS   float64 `json:"mb_s,omitempty"`
	BPerOp   int64   `json:"b_op"`
	AllocsOp int64   `json:"allocs_op"`
}

// File is the on-disk layout.
type File struct {
	Note     string   `json:"note"`
	Baseline []Result `json:"baseline"`
	Current  []Result `json:"current"`
}

// benchLine matches one `go test -bench` result row, e.g.
//
//	BenchmarkPacketEncode-8  500000  2101 ns/op  1948.87 MB/s  0 B/op  0 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.*)$`)

func parse(line string) (Result, bool) {
	m := benchLine.FindStringSubmatch(line)
	if m == nil {
		return Result{}, false
	}
	r := Result{Name: m[1]}
	r.Iters, _ = strconv.ParseInt(m[2], 10, 64)
	fields := strings.Fields(m[3])
	for i := 0; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp = v
		case "MB/s":
			r.MBPerS = v
		case "B/op":
			r.BPerOp = int64(v)
		case "allocs/op":
			r.AllocsOp = int64(v)
		}
	}
	return r, r.NsPerOp > 0
}

// The tracer-overhead benchmark pair: the same AllReduce workload with no
// tracer vs with a live flight recorder. Budget enforcement keys on these
// exact names (bench_test.go's BenchmarkTracerOverhead sub-benchmarks).
const (
	tracerOffName    = "BenchmarkTracerOverhead/off"
	tracerFlightName = "BenchmarkTracerOverhead/flight"
)

// checkTracerBudget enforces the flight-recorder enabled-path budget when
// both halves of the pair are present. The bench tier runs the pair
// several times in separate, temporally adjacent invocations; each i-th
// off run is paired with the i-th flight run (input order) and the
// overhead is the median of the per-pair ratios. Pairing before reducing
// cancels machine-speed drift across the run — a shared box slowing down
// mid-sweep inflates both halves of a pair equally, where comparing
// block-of-off against block-of-flight minima would read the drift as
// tracer cost. Returns (overheadPct, found, err).
func checkTracerBudget(results []Result, budgetPct float64) (float64, bool, error) {
	var offs, flights []float64
	for _, r := range results {
		switch r.Name {
		case tracerOffName:
			offs = append(offs, r.NsPerOp)
		case tracerFlightName:
			flights = append(flights, r.NsPerOp)
		}
	}
	n := len(offs)
	if len(flights) < n {
		n = len(flights)
	}
	if n == 0 {
		return 0, false, nil
	}
	pcts := make([]float64, n)
	for i := 0; i < n; i++ {
		pcts[i] = 100 * (flights[i] - offs[i]) / offs[i]
	}
	sort.Float64s(pcts)
	pct := pcts[n/2]
	if n%2 == 0 {
		pct = (pcts[n/2-1] + pcts[n/2]) / 2
	}
	if pct > budgetPct {
		return pct, true, fmt.Errorf("flight-recorder overhead %.1f%% exceeds the %.0f%% budget (median of %d paired runs: %v)",
			pct, budgetPct, n, pcts)
	}
	return pct, true, nil
}

func main() {
	out := flag.String("o", "BENCH_datapath.json", "output JSON path")
	budget := flag.Float64("tracer-budget", 5, "max flight-recorder overhead %% over the untraced pair (<0 disables)")
	flag.Parse()

	var current []Result
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass the raw output through for the console
		if r, ok := parse(line); ok {
			current = append(current, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: read stdin: %v\n", err)
		os.Exit(1)
	}
	if len(current) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found on stdin")
		os.Exit(1)
	}

	f := File{
		Note:     "datapath wall-clock benchmarks; baseline is the first recording at this path and is preserved across reruns",
		Baseline: current,
		Current:  current,
	}
	if prev, err := os.ReadFile(*out); err == nil {
		var old File
		if json.Unmarshal(prev, &old) == nil && len(old.Baseline) > 0 {
			f.Baseline = old.Baseline
		}
	}
	enc, err := json.MarshalIndent(&f, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(enc, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(current), *out)

	if *budget >= 0 {
		pct, found, err := checkTracerBudget(current, *budget)
		switch {
		case err != nil:
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		case found:
			fmt.Fprintf(os.Stderr, "benchjson: flight-recorder overhead %+.1f%% (budget %.0f%%)\n", pct, *budget)
		}
	}
}
