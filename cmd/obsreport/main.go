// Command obsreport exercises the observability layer end to end: it runs
// a short in-process AllReduce sweep with a trace counter installed and a
// pool-leak audit bracketing the run, renders the metrics registry, trace
// tallies, receive-pump routing decisions, and pool balances as tables,
// and records the whole snapshot to a JSON file so the observability
// surface is tracked alongside BENCH_datapath.json from PR to PR.
//
// The report includes p50/p95/p99 for every histogram (extracted from the
// log2 buckets by the registry snapshot) and the disabled-tracer overhead
// delta: the same sweep timed with no tracer installed vs with the
// counting tracer, recording what the tracing layer costs when off vs on.
//
// Usage:
//
//	go run ./cmd/obsreport -o OBS_datapath.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"sync"
	"time"

	"omnireduce"
	"omnireduce/internal/obs"
)

// report is the on-disk layout: the registry snapshot and pool balances
// (the same document /debug/obs serves), plus the run's trace tallies,
// merged pump counters, the leak-audit verdict, and the tracer overhead
// comparison.
type report struct {
	Metrics   obs.RegistrySnapshot `json:"metrics"`
	Pools     []obs.PoolBalance    `json:"pools"`
	Trace     map[string]int64     `json:"trace"`
	Pump      omnireduce.PumpStats `json:"pump"`
	PoolLeaks []obs.PoolBalance    `json:"pool_leaks,omitempty"`
	// UntracedNs / TracedNs time the identical sweep with tracing
	// disabled and enabled; OverheadPct is the relative delta. A small
	// sweep is noisy — make bench's paired benchmarks are the enforced
	// budget; this field tracks the trend alongside the snapshot.
	UntracedNs  int64   `json:"untraced_ns"`
	TracedNs    int64   `json:"traced_ns"`
	OverheadPct float64 `json:"overhead_pct"`
}

// runSweep executes the AllReduce sweep on a fresh cluster and returns
// elapsed time plus the merged pump counters.
func runSweep(workers, size, iters int, sparsity float64) (time.Duration, omnireduce.PumpStats) {
	cluster, err := omnireduce.NewLocalCluster(omnireduce.Options{Workers: workers})
	if err != nil {
		log.Fatalf("obsreport: %v", err)
	}
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1 + w*7919)))
			data := make([]float32, size)
			for it := 0; it < iters; it++ {
				for i := range data {
					if rng.Float64() >= sparsity {
						data[i] = float32(rng.NormFloat64())
					} else {
						data[i] = 0
					}
				}
				if err := cluster.Worker(w).AllReduce(data); err != nil {
					log.Fatalf("obsreport: worker %d: %v", w, err)
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var pump omnireduce.PumpStats
	for w := 0; w < cluster.Size(); w++ {
		p := cluster.Worker(w).PumpStats()
		pump.Delivered += p.Delivered
		pump.StaleDrops += p.StaleDrops
		pump.OverflowDrops += p.OverflowDrops
		pump.BadPackets += p.BadPackets
	}
	if err := cluster.Close(); err != nil {
		log.Fatalf("obsreport: close: %v", err)
	}
	return elapsed, pump
}

// runJobsSweep runs a short multi-tenant sweep — two tenants, two jobs
// each, on one cluster — so the per-tenant registry metrics
// ("tenant:<name>:...") carry real numbers in the report.
func runJobsSweep(workers, size int) {
	cluster, err := omnireduce.NewLocalCluster(omnireduce.Options{Workers: workers})
	if err != nil {
		log.Fatalf("obsreport: %v", err)
	}
	var wg sync.WaitGroup
	for _, id := range []struct{ tenant, job string }{
		{"prod", "ranker"}, {"prod", "embedder"},
		{"research", "ablation-a"}, {"research", "ablation-b"},
	} {
		wg.Add(1)
		go func(tenant, jobName string) {
			defer wg.Done()
			jobs := make([]*omnireduce.Job, workers)
			for w := 0; w < workers; w++ {
				j, err := cluster.Worker(w).OpenJob(tenant, jobName)
				if err != nil {
					log.Fatalf("obsreport: open job %s/%s: %v", tenant, jobName, err)
				}
				jobs[w] = j
			}
			var jwg sync.WaitGroup
			for w := 0; w < workers; w++ {
				jwg.Add(1)
				go func(w int) {
					defer jwg.Done()
					data := make([]float32, size)
					for i := range data {
						data[i] = float32(w + i%7)
					}
					if err := jobs[w].AllReduce(data); err != nil {
						log.Fatalf("obsreport: job %s/%s worker %d: %v", tenant, jobName, w, err)
					}
				}(w)
			}
			jwg.Wait()
			for _, j := range jobs {
				j.Close()
			}
		}(id.tenant, id.job)
	}
	wg.Wait()
	if err := cluster.Close(); err != nil {
		log.Fatalf("obsreport: close: %v", err)
	}
}

func main() {
	out := flag.String("o", "OBS_datapath.json", "output JSON path (empty to skip)")
	workers := flag.Int("workers", 4, "in-process workers")
	size := flag.Int("size", 1<<16, "tensor elements (float32)")
	sparsityF := flag.Float64("sparsity", 0.9, "fraction of zero elements")
	iters := flag.Int("iters", 4, "AllReduce iterations")
	flag.Parse()

	audit := obs.StartLeakAudit()

	// Baseline sweep: no tracer installed — the disabled path the
	// datapath's one-atomic-load budget is about. A warmup sweep first so
	// both timed runs see warm pools.
	obs.SetTracer(nil)
	runSweep(*workers, *size, *iters, *sparsityF)
	untraced, _ := runSweep(*workers, *size, *iters, *sparsityF)

	// Traced sweep: the report must show the trace path live, and the
	// drift tier separately proves it changes nothing.
	tracer := obs.NewCountingTracer()
	prev := obs.SetTracer(tracer)
	defer obs.SetTracer(prev)
	traced, pump := runSweep(*workers, *size, *iters, *sparsityF)

	// Multi-tenant sweep: four jobs across two tenants on one cluster, so
	// the per-tenant admission metrics appear in the tables and snapshot.
	runJobsSweep(*workers, *size/4)

	leaks := audit.Settle(2 * time.Second)
	overheadPct := 100 * (float64(traced-untraced) / float64(untraced))

	fmt.Printf("obsreport: %d workers x %d iters over %d elements (%.0f%% sparse)\n",
		*workers, *iters, *size, *sparsityF*100)
	fmt.Printf("obsreport: untraced %v, traced %v (delta %+.1f%%; enforced budget lives in make bench)\n",
		untraced.Round(time.Millisecond), traced.Round(time.Millisecond), overheadPct)
	for _, t := range obs.Default.Tables("obs ") {
		t.Render(os.Stdout)
	}
	if t := obs.Default.TenantTable("obs "); t != nil {
		t.Render(os.Stdout)
	}
	tracer.Counters().Table("trace events").Render(os.Stdout)
	obs.PoolTable().Render(os.Stdout)
	fmt.Printf("pump: delivered %d, stale drops %d, overflow drops %d, bad packets %d\n",
		pump.Delivered, pump.StaleDrops, pump.OverflowDrops, pump.BadPackets)
	if err := obs.LeaksErr(leaks); err != nil {
		log.Fatalf("obsreport: %v", err)
	}
	fmt.Println("pool balance clean: every GetBuf matched by a PutBuf")

	if *out == "" {
		return
	}
	trace := make(map[string]int64)
	for ev := obs.Event(0); ev < obs.NumEvents; ev++ {
		if n := tracer.Count(ev); n != 0 {
			trace[ev.String()] = n
		}
	}
	doc := report{
		Metrics:     obs.Default.Snapshot(),
		Pools:       obs.PoolBalances(),
		Trace:       trace,
		Pump:        pump,
		PoolLeaks:   leaks,
		UntracedNs:  int64(untraced),
		TracedNs:    int64(traced),
		OverheadPct: overheadPct,
	}
	enc, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		log.Fatalf("obsreport: %v", err)
	}
	if err := os.WriteFile(*out, append(enc, '\n'), 0o644); err != nil {
		log.Fatalf("obsreport: %v", err)
	}
	fmt.Fprintf(os.Stderr, "obsreport: wrote %s\n", *out)
}
