// Command obsreport exercises the observability layer end to end: it runs
// a short in-process AllReduce sweep with a trace counter installed and a
// pool-leak audit bracketing the run, renders the metrics registry, trace
// tallies, receive-pump routing decisions, and pool balances as tables,
// and records the whole snapshot to a JSON file so the observability
// surface is tracked alongside BENCH_datapath.json from PR to PR.
//
// Usage:
//
//	go run ./cmd/obsreport -o OBS_datapath.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"sync"
	"time"

	"omnireduce"
	"omnireduce/internal/obs"
)

// report is the on-disk layout: the registry snapshot and pool balances
// (the same document /debug/obs serves), plus the run's trace tallies,
// merged pump counters, and the leak-audit verdict.
type report struct {
	Metrics   obs.RegistrySnapshot `json:"metrics"`
	Pools     []obs.PoolBalance    `json:"pools"`
	Trace     map[string]int64     `json:"trace"`
	Pump      omnireduce.PumpStats `json:"pump"`
	PoolLeaks []obs.PoolBalance    `json:"pool_leaks,omitempty"`
}

func main() {
	out := flag.String("o", "OBS_datapath.json", "output JSON path (empty to skip)")
	workers := flag.Int("workers", 4, "in-process workers")
	size := flag.Int("size", 1<<16, "tensor elements (float32)")
	sparsityF := flag.Float64("sparsity", 0.9, "fraction of zero elements")
	iters := flag.Int("iters", 4, "AllReduce iterations")
	flag.Parse()

	// Tracing on for the whole sweep: the report must show the trace
	// path live, and the drift tier separately proves it changes nothing.
	tracer := obs.NewCountingTracer()
	prev := obs.SetTracer(tracer)
	defer obs.SetTracer(prev)
	audit := obs.StartLeakAudit()

	cluster, err := omnireduce.NewLocalCluster(omnireduce.Options{Workers: *workers})
	if err != nil {
		log.Fatalf("obsreport: %v", err)
	}

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1 + w*7919)))
			data := make([]float32, *size)
			for it := 0; it < *iters; it++ {
				for i := range data {
					if rng.Float64() >= *sparsityF {
						data[i] = float32(rng.NormFloat64())
					} else {
						data[i] = 0
					}
				}
				if err := cluster.Worker(w).AllReduce(data); err != nil {
					log.Fatalf("obsreport: worker %d: %v", w, err)
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var pump omnireduce.PumpStats
	for w := 0; w < cluster.Size(); w++ {
		p := cluster.Worker(w).PumpStats()
		pump.Delivered += p.Delivered
		pump.StaleDrops += p.StaleDrops
		pump.OverflowDrops += p.OverflowDrops
		pump.BadPackets += p.BadPackets
	}
	if err := cluster.Close(); err != nil {
		log.Fatalf("obsreport: close: %v", err)
	}
	leaks := audit.Settle(2 * time.Second)

	fmt.Printf("obsreport: %d workers x %d iters over %d elements (%.0f%% sparse) in %v\n",
		*workers, *iters, *size, *sparsityF*100, elapsed.Round(time.Millisecond))
	for _, t := range obs.Default.Tables("obs ") {
		t.Render(os.Stdout)
	}
	tracer.Counters().Table("trace events").Render(os.Stdout)
	obs.PoolTable().Render(os.Stdout)
	fmt.Printf("pump: delivered %d, stale drops %d, overflow drops %d, bad packets %d\n",
		pump.Delivered, pump.StaleDrops, pump.OverflowDrops, pump.BadPackets)
	if err := obs.LeaksErr(leaks); err != nil {
		log.Fatalf("obsreport: %v", err)
	}
	fmt.Println("pool balance clean: every GetBuf matched by a PutBuf")

	if *out == "" {
		return
	}
	trace := make(map[string]int64)
	for ev := obs.Event(0); ev < obs.NumEvents; ev++ {
		if n := tracer.Count(ev); n != 0 {
			trace[ev.String()] = n
		}
	}
	doc := report{
		Metrics:   obs.Default.Snapshot(),
		Pools:     obs.PoolBalances(),
		Trace:     trace,
		Pump:      pump,
		PoolLeaks: leaks,
	}
	enc, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		log.Fatalf("obsreport: %v", err)
	}
	if err := os.WriteFile(*out, append(enc, '\n'), 0o644); err != nil {
		log.Fatalf("obsreport: %v", err)
	}
	fmt.Fprintf(os.Stderr, "obsreport: wrote %s\n", *out)
}
