// Command aggregator runs a standalone OmniReduce aggregator node for
// cross-process or cross-host deployments.
//
// The address book lists every node as id=host:port, workers first
// (0..workers-1), aggregators after. The aggregator replies to workers
// over their inbound connections, so with the TCP transport only the
// aggregator addresses must be reachable; worker entries may be omitted.
// Example (1 aggregator, 2 workers):
//
//	aggregator -id 2 -workers 2 -aggregators 1 \
//	    -nodes 0=10.0.0.1:7000,1=10.0.0.2:7000,2=10.0.0.3:7000 \
//	    -transport tcp
//
// The matching workers are started with cmd/worker (or any program using
// the omnireduce package with the same Options and address book).
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"

	"omnireduce"
	"omnireduce/internal/cli"
	"omnireduce/internal/obs"
)

func main() {
	id := flag.Int("id", -1, "this aggregator's node id (>= workers)")
	workers := flag.Int("workers", 0, "number of workers in the job")
	aggregators := flag.Int("aggregators", 1, "number of aggregator shards")
	nodes := flag.String("nodes", "", "comma-separated id=host:port address book")
	transportName := flag.String("transport", "tcp", "tcp (reliable) or udp (loss recovery)")
	blockSize := flag.Int("block-size", 256, "elements per block")
	fusion := flag.Int("fusion", 8, "blocks fused per packet")
	streams := flag.Int("streams", 4, "parallel aggregation streams")
	obsAddr := flag.String("obs", "", "serve /debug/obs, /debug/vars, and /debug/pprof on this address (empty = off)")
	flag.Parse()

	if *obsAddr != "" {
		srv := obs.ServeDebug(*obsAddr, obs.Default)
		defer srv.Close()
		log.Printf("aggregator: observability endpoint on http://%s/debug/obs", *obsAddr)
	}

	addrs, err := cli.ParseNodes(*nodes)
	if err != nil {
		log.Fatalf("aggregator: %v", err)
	}
	if *id < *workers || *workers <= 0 {
		log.Fatalf("aggregator: -id must be >= -workers (worker ids come first)")
	}
	opts := omnireduce.Options{
		Workers:     *workers,
		Aggregators: *aggregators,
		BlockSize:   *blockSize,
		FusionWidth: *fusion,
		Streams:     *streams,
	}

	var agg *omnireduce.Aggregator
	switch *transportName {
	case "tcp":
		agg, err = omnireduce.NewTCPAggregator(*id, addrs, opts)
	case "udp":
		agg, err = omnireduce.NewUDPAggregator(*id, addrs, opts)
	default:
		log.Fatalf("aggregator: unknown transport %q", *transportName)
	}
	if err != nil {
		log.Fatalf("aggregator: %v", err)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		<-sig
		log.Printf("aggregator: shutting down")
		agg.Close()
	}()

	log.Printf("aggregator %d serving %d workers over %s", *id, *workers, *transportName)
	if err := agg.Run(); err != nil {
		log.Fatalf("aggregator: %v", err)
	}
}
