// Command aggregator runs a standalone OmniReduce aggregator node for
// cross-process or cross-host deployments.
//
// The address book lists every node as id=host:port, workers first
// (0..workers-1), aggregators after. The aggregator replies to workers
// over their inbound connections, so with the TCP transport only the
// aggregator addresses must be reachable; worker entries may be omitted.
// Example (1 aggregator, 2 workers):
//
//	aggregator -id 2 -workers 2 -aggregators 1 \
//	    -nodes 0=10.0.0.1:7000,1=10.0.0.2:7000,2=10.0.0.3:7000 \
//	    -transport tcp
//
// The matching workers are started with cmd/worker (or any program using
// the omnireduce package with the same Options and address book).
package main

import (
	"context"
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"omnireduce"
	"omnireduce/internal/cli"
	"omnireduce/internal/obs"
)

func main() {
	id := flag.Int("id", -1, "this aggregator's node id (>= workers)")
	workers := flag.Int("workers", 0, "number of workers in the job")
	aggregators := flag.Int("aggregators", 1, "number of aggregator shards")
	nodes := flag.String("nodes", "", "comma-separated id=host:port address book")
	transportName := flag.String("transport", "tcp", "tcp (reliable) or udp (loss recovery)")
	blockSize := flag.Int("block-size", 256, "elements per block")
	fusion := flag.Int("fusion", 8, "blocks fused per packet")
	streams := flag.Int("streams", 4, "parallel aggregation streams")
	quotaFile := flag.String("quota-file", "", "JSON per-tenant quota/weight policy (see internal/cli.QuotaFile)")
	viewEpoch := flag.Uint("view-epoch", 0, "starting membership view epoch (> 0 enables dynamic membership and epoch enforcement)")
	checkpointPeers := flag.String("checkpoint-peers", "", "comma-separated standby node ids to stream slot-state checkpoints to (requires tcp between primary and standby)")
	standby := flag.Bool("standby", false, "start passive: store checkpoints and refuse data until activated into a view (requires -view-epoch)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "max time to finish in-flight rounds on SIGTERM before closing anyway")
	obsAddr := flag.String("obs", "", "serve /debug/obs, /debug/vars, and /debug/pprof on this address (empty = off)")
	flag.Parse()

	if *obsAddr != "" {
		srv := obs.ServeDebug(*obsAddr, obs.Default)
		defer srv.Close()
		log.Printf("aggregator: observability endpoint on http://%s/debug/obs", *obsAddr)
	}

	addrs, err := cli.ParseNodes(*nodes)
	if err != nil {
		log.Fatalf("aggregator: %v", err)
	}
	if *id < *workers || *workers <= 0 {
		log.Fatalf("aggregator: -id must be >= -workers (worker ids come first)")
	}
	ckPeers, err := cli.ParseIDList(*checkpointPeers)
	if err != nil {
		log.Fatalf("aggregator: -checkpoint-peers: %v", err)
	}
	opts := omnireduce.Options{
		Workers:         *workers,
		Aggregators:     *aggregators,
		BlockSize:       *blockSize,
		FusionWidth:     *fusion,
		Streams:         *streams,
		ViewEpoch:       uint32(*viewEpoch),
		CheckpointPeers: ckPeers,
		Standby:         *standby,
	}
	if *standby {
		log.Printf("aggregator: standby mode — refusing data until activated into a view")
	}
	if *quotaFile != "" {
		tcfg, err := cli.ParseQuotaFile(*quotaFile)
		if err != nil {
			log.Fatalf("aggregator: %v", err)
		}
		opts.DefaultQuota = omnireduce.TenantQuota(tcfg.Default)
		opts.Tenants = make(map[string]omnireduce.TenantQuota, len(tcfg.Tenants))
		for name, q := range tcfg.Tenants {
			opts.Tenants[name] = omnireduce.TenantQuota(q)
		}
		log.Printf("aggregator: tenancy policy loaded from %s (%d tenants)", *quotaFile, len(tcfg.Tenants))
	}

	var agg *omnireduce.Aggregator
	switch *transportName {
	case "tcp":
		agg, err = omnireduce.NewTCPAggregator(*id, addrs, opts)
	case "udp":
		agg, err = omnireduce.NewUDPAggregator(*id, addrs, opts)
	default:
		log.Fatalf("aggregator: unknown transport %q", *transportName)
	}
	if err != nil {
		log.Fatalf("aggregator: %v", err)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		<-sig
		// Graceful drain: refuse new admissions (workers get typed
		// ErrAggregatorDraining), let in-flight rounds finish, then close.
		// A second signal skips the drain.
		log.Printf("aggregator: draining (up to %v; signal again to force)", *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		go func() {
			<-sig
			log.Printf("aggregator: forced shutdown")
			cancel()
		}()
		if err := agg.Drain(ctx); err != nil {
			log.Printf("aggregator: drain incomplete: %v", err)
		} else {
			log.Printf("aggregator: drained cleanly")
		}
		agg.Close()
	}()

	log.Printf("aggregator %d serving %d workers over %s", *id, *workers, *transportName)
	if err := agg.Run(); err != nil {
		log.Fatalf("aggregator: %v", err)
	}
}
