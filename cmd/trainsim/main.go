// Command trainsim regenerates the paper's end-to-end training
// experiments (§6.2): scaling factors, training speedups, and the
// block-compression accuracy/convergence studies.
//
// Usage:
//
//	trainsim -fig 1           # one of 1, 9, 10, 11, 12, 14
//	trainsim -all
//	trainsim -fig 9 -csv
package main

import (
	"flag"
	"fmt"
	"os"

	"omnireduce/internal/exp"
	"omnireduce/internal/metrics"
)

func main() {
	fig := flag.Int("fig", 0, "figure number (1, 9, 10, 11, 12, 14)")
	all := flag.Bool("all", false, "run every training experiment")
	csv := flag.Bool("csv", false, "emit CSV")
	scale := flag.Int("scale", 16, "traffic scale divisor")
	seed := flag.Int64("seed", 42, "random seed")
	flag.Parse()

	o := exp.Options{Scale: *scale, Seed: *seed}
	figs := map[int]func(exp.Options) *metrics.Table{
		1: exp.Fig1, 9: exp.Fig9, 10: exp.Fig10,
		11: exp.Fig11, 12: exp.Fig12, 14: exp.Fig14,
	}
	emit := func(t *metrics.Table) {
		if *csv {
			t.RenderCSV(os.Stdout)
		} else {
			t.Render(os.Stdout)
		}
		fmt.Println()
	}
	if *all {
		for _, id := range []int{1, 9, 10, 11, 12, 14} {
			emit(figs[id](o))
		}
		return
	}
	f, ok := figs[*fig]
	if !ok {
		fmt.Fprintf(os.Stderr, "trainsim: no such training figure %d\n", *fig)
		flag.Usage()
		os.Exit(2)
	}
	emit(f(o))
}
