package omnireduce

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
)

func runAll(t *testing.T, n int, fn func(w int) error) {
	t.Helper()
	var wg sync.WaitGroup
	errs := make([]error, n)
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			errs[w] = fn(w)
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
}

func TestLocalClusterAllReduce(t *testing.T) {
	c, err := NewLocalCluster(Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := c.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	if c.Size() != 3 {
		t.Fatalf("Size = %d", c.Size())
	}
	rng := rand.New(rand.NewSource(1))
	n := 10_000
	inputs := make([][]float32, 3)
	want := make([]float32, n)
	for w := range inputs {
		inputs[w] = make([]float32, n)
		for i := range inputs[w] {
			if rng.Float64() < 0.2 {
				inputs[w][i] = float32(rng.NormFloat64())
				want[i] += inputs[w][i]
			}
		}
	}
	runAll(t, 3, func(w int) error { return c.Worker(w).AllReduce(inputs[w]) })
	for w := range inputs {
		for i := range want {
			d := float64(inputs[w][i]) - float64(want[i])
			if d > 1e-4 || d < -1e-4 {
				t.Fatalf("worker %d elem %d: %v vs %v", w, i, inputs[w][i], want[i])
			}
		}
	}
	if c.Worker(0).Stats().PacketsSent == 0 {
		t.Fatal("stats not recorded")
	}
}

func TestLocalClusterMultiTenantJobs(t *testing.T) {
	c, err := NewLocalCluster(Options{
		Workers: 2,
		Tenants: map[string]TenantQuota{"prod": {Weight: 3, MaxJobs: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Two jobs from different tenants multiplex over the same workers and
	// aggregator; each sums only its own members' data.
	names := [][2]string{{"prod", "ranker"}, {"research", "ablation"}}
	jobs := make([][]*Job, len(names))
	for ji, nm := range names {
		jobs[ji] = make([]*Job, 2)
		for w := 0; w < 2; w++ {
			j, err := c.Worker(w).OpenJob(nm[0], nm[1])
			if err != nil {
				t.Fatalf("OpenJob %v worker %d: %v", nm, w, err)
			}
			defer j.Close()
			if j.Tenant() != nm[0] || j.Name() != nm[1] || j.Namespace() == 0 {
				t.Fatalf("job identity: tenant=%q name=%q ns=%d", j.Tenant(), j.Name(), j.Namespace())
			}
			jobs[ji][w] = j
		}
	}
	rng := rand.New(rand.NewSource(8))
	const n = 4096
	inputs := make([][][]float32, len(names))
	wants := make([][]float32, len(names))
	for ji := range names {
		inputs[ji] = make([][]float32, 2)
		wants[ji] = make([]float32, n)
		for w := 0; w < 2; w++ {
			inputs[ji][w] = make([]float32, n)
			for i := range inputs[ji][w] {
				inputs[ji][w][i] = float32(rng.NormFloat64())
				wants[ji][i] += inputs[ji][w][i]
			}
		}
	}
	runAll(t, 2, func(w int) error {
		for ji := range jobs {
			if err := jobs[ji][w].AllReduce(inputs[ji][w]); err != nil {
				return err
			}
		}
		return nil
	})
	for ji := range names {
		for w := 0; w < 2; w++ {
			for i := range wants[ji] {
				d := float64(inputs[ji][w][i]) - float64(wants[ji][i])
				if d > 1e-4 || d < -1e-4 {
					t.Fatalf("job %v worker %d elem %d: %v vs %v", names[ji], w, i, inputs[ji][w][i], wants[ji][i])
				}
			}
		}
	}

	// prod's MaxJobs=2: ranker is its first job, embedder fits as the
	// second, and a third is refused with the typed quota error.
	extra := make([]*Job, 2)
	for w := 0; w < 2; w++ {
		j, err := c.Worker(w).OpenJob("prod", "embedder")
		if err != nil {
			t.Fatalf("OpenJob within quota: %v", err)
		}
		defer j.Close()
		extra[w] = j
	}
	if _, err := c.Worker(0).OpenJob("prod", "overflow"); !errors.Is(err, ErrTenantQuota) {
		t.Fatalf("OpenJob beyond MaxJobs: got %v, want ErrTenantQuota", err)
	}
}

func TestLocalClusterSparse(t *testing.T) {
	c, err := NewLocalCluster(Options{Workers: 2, BlockSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	a := &SparseTensor{Dim: 100, Keys: []int32{2, 50}, Values: []float32{1, 2}}
	b := &SparseTensor{Dim: 100, Keys: []int32{50, 99}, Values: []float32{10, 4}}
	ins := []*SparseTensor{a, b}
	outs := make([]*SparseTensor, 2)
	runAll(t, 2, func(w int) error {
		var err error
		outs[w], err = c.Worker(w).AllReduceSparse(ins[w])
		return err
	})
	for w, out := range outs {
		d := out.Dense()
		if d[2] != 1 || d[50] != 12 || d[99] != 4 {
			t.Fatalf("worker %d: %v", w, d)
		}
	}
}

func TestLocalClusterBroadcastAllGather(t *testing.T) {
	c, err := NewLocalCluster(Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	data := [][]float32{{1, 2, 3}, {9, 9, 9}}
	runAll(t, 2, func(w int) error { return c.Worker(w).Broadcast(data[w], 0) })
	if data[1][0] != 1 || data[1][2] != 3 {
		t.Fatalf("broadcast: %v", data[1])
	}
	segs := [][]float32{{1, 2}, {3, 4}}
	outs := [][]float32{make([]float32, 4), make([]float32, 4)}
	runAll(t, 2, func(w int) error { return c.Worker(w).AllGather(segs[w], outs[w]) })
	for w := range outs {
		if outs[w][0] != 1 || outs[w][3] != 4 {
			t.Fatalf("allgather worker %d: %v", w, outs[w])
		}
	}
}

func TestFromDenseRoundTrip(t *testing.T) {
	s := FromDense([]float32{0, 1, 0, -2})
	if s.Dim != 4 || len(s.Keys) != 2 || s.Keys[0] != 1 || s.Values[1] != -2 {
		t.Fatalf("FromDense: %+v", s)
	}
	d := s.Dense()
	if d[1] != 1 || d[3] != -2 || d[0] != 0 {
		t.Fatalf("Dense: %v", d)
	}
}

func TestOptionsValidation(t *testing.T) {
	if _, err := NewLocalCluster(Options{}); err == nil {
		t.Fatal("expected error for zero workers")
	}
}

func TestSwitchModeCluster(t *testing.T) {
	c, err := NewLocalCluster(Options{Workers: 2, SwitchMode: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	data := [][]float32{{0.5, 1.25}, {0.25, -0.25}}
	runAll(t, 2, func(w int) error { return c.Worker(w).AllReduce(data[w]) })
	for w := range data {
		if d := float64(data[w][0]) - 0.75; d > 1e-4 || d < -1e-4 {
			t.Fatalf("worker %d: %v", w, data[w])
		}
	}
}

func TestDeterministicCluster(t *testing.T) {
	c, err := NewLocalCluster(Options{Workers: 3, DeterministicOrder: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	run := func() []float32 {
		rng := rand.New(rand.NewSource(5))
		inputs := make([][]float32, 3)
		for w := range inputs {
			inputs[w] = make([]float32, 1000)
			for i := range inputs[w] {
				inputs[w][i] = float32(rng.NormFloat64()) * 1e-3
			}
		}
		runAll(t, 3, func(w int) error { return c.Worker(w).AllReduce(inputs[w]) })
		return inputs[0]
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("deterministic mode not bit-stable")
		}
	}
}

func TestHalfPrecisionCluster(t *testing.T) {
	c, err := NewLocalCluster(Options{Workers: 2, HalfPrecision: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	data := [][]float32{{0.5, 1.5, -2}, {0.25, 0.5, 1}}
	runAll(t, 2, func(w int) error { return c.Worker(w).AllReduce(data[w]) })
	want := []float32{0.75, 2, -1}
	for w := range data {
		for i := range want {
			d := float64(data[w][i]) - float64(want[i])
			if d > 1e-2 || d < -1e-2 {
				t.Fatalf("worker %d: %v vs %v", w, data[w], want)
			}
		}
	}
	// Wire volume must reflect the 2-byte elements.
	st := c.Worker(0).Stats()
	if st.BytesSent == 0 {
		t.Fatal("no bytes recorded")
	}
}
